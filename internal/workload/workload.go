// Package workload generates the deterministic (seeded) key sets and
// operation streams the experiments run: uniform and Zipf-distributed
// keys, file-system-shaped keys ("let keys consist of a file name and a
// block number", paper Section 1), mixed operation streams, and
// adversarial key sets that collide under a given hash function — the
// workload that separates the paper's worst-case guarantees from
// hashing's expected-case ones (experiment E7-tails).
package workload

import (
	"math/rand"

	"pdmdict/internal/pdm"
)

// Uniform returns n distinct keys drawn uniformly from [0, universe).
func Uniform(n int, universe uint64, seed int64) []pdm.Word {
	return UniformRNG(n, universe, rand.New(rand.NewSource(seed)))
}

// UniformRNG is Uniform drawing from a caller-threaded source, so a
// composite experiment can generate several workloads off one seeded
// stream instead of inventing correlated seeds.
func UniformRNG(n int, universe uint64, rng *rand.Rand) []pdm.Word {
	seen := make(map[pdm.Word]struct{}, n)
	keys := make([]pdm.Word, 0, n)
	for len(keys) < n {
		k := pdm.Word(rng.Uint64() % universe)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	return keys
}

// Sequential returns the keys lo, lo+1, …, lo+n−1.
func Sequential(n int, lo pdm.Word) []pdm.Word {
	keys := make([]pdm.Word, n)
	for i := range keys {
		keys[i] = lo + pdm.Word(i)
	}
	return keys
}

// ZipfAccesses returns an access stream of length m over the given key
// set, Zipf-distributed with exponent s > 1 (rank 1 most popular) — the
// "webmail or http servers … highly random fashion" read mix of the
// paper's motivation, skewed as real object stores are.
func ZipfAccesses(keys []pdm.Word, m int, s float64, seed int64) []pdm.Word {
	return ZipfAccessesRNG(keys, m, s, rand.New(rand.NewSource(seed)))
}

// ZipfAccessesRNG is ZipfAccesses drawing from a caller-threaded source.
func ZipfAccessesRNG(keys []pdm.Word, m int, s float64, rng *rand.Rand) []pdm.Word {
	z := rand.NewZipf(rng, s, 1, uint64(len(keys)-1))
	out := make([]pdm.Word, m)
	for i := range out {
		out[i] = keys[z.Uint64()]
	}
	return out
}

// FileSystemKeys returns keys of the form (inode, block#): inode in the
// high 32 bits, block number in the low 32 — the dictionary-as-file-
// system encoding of Section 1 ("let keys consist of a file name and a
// block number").
func FileSystemKeys(files, blocksPerFile int) []pdm.Word {
	keys := make([]pdm.Word, 0, files*blocksPerFile)
	for f := 0; f < files; f++ {
		for b := 0; b < blocksPerFile; b++ {
			keys = append(keys, pdm.Word(f)<<32|pdm.Word(b))
		}
	}
	return keys
}

// OpKind labels one dictionary operation.
type OpKind int

// Operation kinds.
const (
	OpLookup OpKind = iota
	OpInsert
	OpDelete
)

// Op is one operation of a stream.
type Op struct {
	Kind OpKind
	Key  pdm.Word
}

// Mix gives the relative weights of lookups, inserts, and deletes.
type Mix struct {
	Lookup, Insert, Delete int
}

// ReadMostly is the motivating file-server mix: overwhelmingly lookups.
var ReadMostly = Mix{Lookup: 90, Insert: 8, Delete: 2}

// WriteHeavy stresses updates.
var WriteHeavy = Mix{Lookup: 20, Insert: 60, Delete: 20}

// Ops generates a stream of m operations over the key set: inserts draw
// fresh keys from the set in order (wrapping), lookups and deletes
// target previously inserted keys (or miss, with probability missRate).
func Ops(keys []pdm.Word, m int, mix Mix, missRate float64, seed int64) []Op {
	return OpsRNG(keys, m, mix, missRate, rand.New(rand.NewSource(seed)))
}

// OpsRNG is Ops drawing from a caller-threaded source.
func OpsRNG(keys []pdm.Word, m int, mix Mix, missRate float64, rng *rand.Rand) []Op {
	total := mix.Lookup + mix.Insert + mix.Delete
	if total <= 0 {
		panic("workload: empty mix")
	}
	var live []pdm.Word
	isLive := map[pdm.Word]bool{}
	next := 0
	ops := make([]Op, 0, m)
	for len(ops) < m {
		r := rng.Intn(total)
		switch {
		case r < mix.Insert || len(live) == 0:
			k := keys[next%len(keys)]
			next++
			if !isLive[k] {
				isLive[k] = true
				live = append(live, k)
			}
			ops = append(ops, Op{Kind: OpInsert, Key: k})
		case r < mix.Insert+mix.Lookup:
			k := live[rng.Intn(len(live))]
			if rng.Float64() < missRate {
				k |= 1 << 62 // outside any generated key range
			}
			ops = append(ops, Op{Kind: OpLookup, Key: k})
		default:
			i := rng.Intn(len(live))
			k := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			delete(isLive, k)
			ops = append(ops, Op{Kind: OpDelete, Key: k})
		}
	}
	return ops
}

// CollidingKeys brute-forces n distinct keys that the given bucket
// function maps to the same bucket as pilot — the adversarial set that
// drives a hash table's worst case (all keys in one chain) while the
// deterministic dictionaries are oblivious to it.
func CollidingKeys(bucketOf func(pdm.Word) int, pilot pdm.Word, n int, universe uint64, seed int64) []pdm.Word {
	return CollidingKeysRNG(bucketOf, pilot, n, universe, rand.New(rand.NewSource(seed)))
}

// CollidingKeysRNG is CollidingKeys drawing from a caller-threaded
// source.
func CollidingKeysRNG(bucketOf func(pdm.Word) int, pilot pdm.Word, n int, universe uint64, rng *rand.Rand) []pdm.Word {
	target := bucketOf(pilot)
	seen := map[pdm.Word]struct{}{pilot: {}}
	keys := []pdm.Word{pilot}
	for len(keys) < n {
		k := pdm.Word(rng.Uint64() % universe)
		if _, dup := seen[k]; dup {
			continue
		}
		if bucketOf(k) == target {
			seen[k] = struct{}{}
			keys = append(keys, k)
		}
	}
	return keys
}

package extsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pdmdict/internal/pdm"
)

func newVec(t *testing.T, d, b, recWords, n int) *Vec {
	t.Helper()
	m := pdm.NewMachine(pdm.Config{D: d, B: b})
	return &Vec{M: m, Start: 0, RecWords: recWords, N: n}
}

func fill(v *Vec, keys []pdm.Word) {
	data := make([]pdm.Word, 0, v.Words())
	for i, k := range keys {
		rec := make([]pdm.Word, v.RecWords)
		rec[0] = k
		for j := 1; j < v.RecWords; j++ {
			rec[j] = pdm.Word(i)*1000 + pdm.Word(j) // payload tied to original position
		}
		data = append(data, rec...)
	}
	WriteAll(v, data)
}

func extractKeys(v *Vec) []pdm.Word {
	data := ReadAll(v)
	keys := make([]pdm.Word, v.N)
	for i := range keys {
		keys[i] = data[i*v.RecWords]
	}
	return keys
}

func TestSortSmall(t *testing.T) {
	v := newVec(t, 4, 4, 2, 10)
	keys := []pdm.Word{9, 3, 7, 1, 8, 2, 6, 0, 5, 4}
	fill(v, keys)
	Sort(v, v.SortStripes(3), 3, ByWord(0))
	got := extractKeys(v)
	for i := range got {
		if got[i] != pdm.Word(i) {
			t.Fatalf("position %d = %d, want %d (full: %v)", i, got[i], i, got)
		}
	}
}

func TestSortAlreadySorted(t *testing.T) {
	v := newVec(t, 2, 4, 1, 20)
	keys := make([]pdm.Word, 20)
	for i := range keys {
		keys[i] = pdm.Word(i)
	}
	fill(v, keys)
	Sort(v, v.SortStripes(3), 3, ByWord(0))
	got := extractKeys(v)
	for i := range got {
		if got[i] != pdm.Word(i) {
			t.Fatalf("sorted input perturbed at %d: %v", i, got)
		}
	}
}

func TestSortSingleAndEmpty(t *testing.T) {
	v := newVec(t, 2, 4, 3, 1)
	fill(v, []pdm.Word{42})
	Sort(v, v.SortStripes(3), 3, ByWord(0))
	if got := extractKeys(v)[0]; got != 42 {
		t.Errorf("singleton sort broke the record: %d", got)
	}
	v0 := newVec(t, 2, 4, 3, 0)
	Sort(v0, 0, 3, ByWord(0)) // must not touch the machine
	if v0.M.Stats().ParallelIOs != 0 {
		t.Error("empty sort performed I/O")
	}
}

func TestSortSatelliteFollowsKey(t *testing.T) {
	v := newVec(t, 4, 4, 3, 50)
	rng := rand.New(rand.NewSource(1))
	keys := make([]pdm.Word, 50)
	for i := range keys {
		keys[i] = pdm.Word(rng.Intn(1000))*10 + pdm.Word(i%10) // distinct
	}
	fill(v, keys)
	// Remember each key's payload.
	want := map[pdm.Word]pdm.Word{}
	for i, k := range keys {
		want[k] = pdm.Word(i)*1000 + 1
	}
	Sort(v, v.SortStripes(4), 4, ByWord(0))
	data := ReadAll(v)
	for i := 0; i < v.N; i++ {
		k, payload := data[i*3], data[i*3+1]
		if want[k] != payload {
			t.Fatalf("satellite detached from key %d: got %d want %d", k, payload, want[k])
		}
	}
}

func TestSortManyRunsMultiplePasses(t *testing.T) {
	// memStripes=3 with D=2, B=2 → runs of 3 stripes = 12 words = 6
	// two-word records; 200 records → 34 runs → several merge passes.
	v := newVec(t, 2, 2, 2, 200)
	rng := rand.New(rand.NewSource(2))
	keys := make([]pdm.Word, 200)
	perm := rng.Perm(200)
	for i, p := range perm {
		keys[i] = pdm.Word(p)
	}
	fill(v, keys)
	Sort(v, v.SortStripes(3), 3, ByWord(0))
	got := extractKeys(v)
	for i := range got {
		if got[i] != pdm.Word(i) {
			t.Fatalf("multi-pass sort wrong at %d: %d", i, got[i])
		}
	}
}

func TestSortIsStripedIO(t *testing.T) {
	// Every batch the sorter issues is a full stripe: MaxBatch must stay 1.
	v := newVec(t, 4, 8, 2, 300)
	rng := rand.New(rand.NewSource(3))
	keys := make([]pdm.Word, 300)
	for i, p := range rng.Perm(300) {
		keys[i] = pdm.Word(p)
	}
	fill(v, keys)
	v.M.ResetStats()
	Sort(v, v.SortStripes(3), 3, ByWord(0))
	s := v.M.Stats()
	if s.MaxBatch != 1 {
		t.Errorf("sort issued a non-parallel batch: MaxBatch=%d", s.MaxBatch)
	}
	if s.ParallelIOs == 0 {
		t.Error("sort did no I/O at all")
	}
}

func TestSortIOWithinSortBound(t *testing.T) {
	// I/O cost should be at most a small multiple of
	// stripes · (1 + passes); sanity-check the constant stays below 8×
	// the one-pass cost per level.
	v := newVec(t, 4, 8, 2, 1000)
	rng := rand.New(rand.NewSource(4))
	keys := make([]pdm.Word, 1000)
	for i, p := range rng.Perm(1000) {
		keys[i] = pdm.Word(p)
	}
	fill(v, keys)
	v.M.ResetStats()
	Sort(v, v.SortStripes(4), 4, ByWord(0))
	stripes := v.Stripes()
	ios := int(v.M.Stats().ParallelIOs)
	if ios > 8*stripes*6 {
		t.Errorf("sort used %d parallel I/Os for %d stripes; looks super-linear", ios, stripes)
	}
}

func TestByWordMultiKey(t *testing.T) {
	less := ByWord(1, 0)
	a := []pdm.Word{5, 1}
	b := []pdm.Word{3, 2}
	c := []pdm.Word{4, 1}
	if !less(a, b) { // secondary word 1 < 2
		t.Error("a < b expected")
	}
	if !less(c, a) { // tie on word 1, then 4 < 5
		t.Error("c < a expected")
	}
	if less(a, a) {
		t.Error("irreflexivity violated")
	}
}

func TestRecordAccess(t *testing.T) {
	v := newVec(t, 2, 2, 3, 10) // records straddle stripes (3 vs stripe of 4)
	fill(v, []pdm.Word{10, 11, 12, 13, 14, 15, 16, 17, 18, 19})
	for i := 0; i < 10; i++ {
		rec := Record(v, i)
		if rec[0] != pdm.Word(10+i) {
			t.Errorf("Record(%d)[0] = %d, want %d", i, rec[0], 10+i)
		}
	}
}

func TestRecordOutOfRangePanics(t *testing.T) {
	v := newVec(t, 2, 2, 1, 3)
	fill(v, []pdm.Word{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Record did not panic")
		}
	}()
	Record(v, 3)
}

func TestWriteAllSizePanics(t *testing.T) {
	v := newVec(t, 2, 2, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-size WriteAll did not panic")
		}
	}()
	WriteAll(v, make([]pdm.Word, 5))
}

func TestSortPanicsOnTinyMemory(t *testing.T) {
	v := newVec(t, 2, 2, 2, 4)
	fill(v, []pdm.Word{3, 1, 2, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("memStripes=2 did not panic")
		}
	}()
	Sort(v, v.SortStripes(2), 2, ByWord(0))
}

// Property: Sort agrees with sort.Slice on arbitrary inputs, for several
// machine geometries, including duplicate keys (stability of the result
// set, not order within ties, is what matters).
func TestPropertySortMatchesStdlib(t *testing.T) {
	f := func(raw []uint16, geom uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 300 {
			raw = raw[:300]
		}
		geoms := []struct{ d, b, mem int }{{2, 2, 3}, {4, 4, 3}, {8, 16, 5}}
		g := geoms[int(geom)%len(geoms)]
		m := pdm.NewMachine(pdm.Config{D: g.d, B: g.b})
		v := &Vec{M: m, Start: 0, RecWords: 2, N: len(raw)}
		data := make([]pdm.Word, 0, v.Words())
		for i, r := range raw {
			data = append(data, pdm.Word(r), pdm.Word(i))
		}
		WriteAll(v, data)
		Sort(v, v.SortStripes(g.mem), g.mem, ByWord(0))

		want := make([]pdm.Word, len(raw))
		for i, r := range raw {
			want[i] = pdm.Word(r)
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		got := extractKeys(v)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

package extsort

import (
	"testing"

	"pdmdict/internal/pdm"
)

func TestAppenderScanRoundTrip(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 2, B: 4})
	a := NewAppender(m, 0, 3)
	for i := 0; i < 25; i++ {
		a.Append([]pdm.Word{pdm.Word(i), pdm.Word(i * 2), pdm.Word(i * 3)})
	}
	if a.Len() != 25 {
		t.Fatalf("Len = %d", a.Len())
	}
	v := a.Vec()
	if v.N != 25 || v.RecWords != 3 {
		t.Fatalf("vec = %+v", v)
	}
	seen := 0
	Scan(v, func(i int, rec []pdm.Word) {
		if rec[0] != pdm.Word(i) || rec[2] != pdm.Word(i*3) {
			t.Fatalf("record %d = %v", i, rec)
		}
		seen++
	})
	if seen != 25 {
		t.Errorf("Scan visited %d records", seen)
	}
}

func TestVecReaderPull(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 2, B: 4})
	a := NewAppender(m, 0, 2)
	for i := 0; i < 10; i++ {
		a.Append([]pdm.Word{pdm.Word(i), pdm.Word(100 + i)})
	}
	v := a.Vec()
	r := NewVecReader(v)
	for i := 0; i < 10; i++ {
		rec, ok := r.Next()
		if !ok || rec[0] != pdm.Word(i) || rec[1] != pdm.Word(100+i) {
			t.Fatalf("record %d = %v, %v", i, rec, ok)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("reader did not end")
	}
	if _, ok := r.Next(); ok {
		t.Error("reader resurrected after end")
	}
}

func TestVecReaderCopiesAreStable(t *testing.T) {
	// The returned slice is reused, but must hold the CURRENT record
	// until the next call — not be clobbered by internal lookahead.
	m := pdm.NewMachine(pdm.Config{D: 2, B: 2})
	a := NewAppender(m, 0, 1)
	a.Append([]pdm.Word{1})
	a.Append([]pdm.Word{2})
	r := NewVecReader(a.Vec())
	rec, _ := r.Next()
	if rec[0] != 1 {
		t.Fatalf("first record = %v (lookahead clobbered it)", rec)
	}
}

func TestAppenderPanics(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 2, B: 4})
	a := NewAppender(m, 0, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong-width Append did not panic")
			}
		}()
		a.Append([]pdm.Word{1})
	}()
	a.Append([]pdm.Word{1, 2})
	a.Vec()
	defer func() {
		if recover() == nil {
			t.Error("Append after Vec did not panic")
		}
	}()
	a.Append([]pdm.Word{3, 4})
}

func TestScanEmptyVec(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 2, B: 4})
	v := NewAppender(m, 0, 2).Vec()
	Scan(v, func(int, []pdm.Word) { t.Error("callback on empty vec") })
	if _, ok := NewVecReader(v).Next(); ok {
		t.Error("reader on empty vec returned a record")
	}
}

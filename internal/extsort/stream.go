package extsort

import "pdmdict/internal/pdm"

// Streaming access to record vectors. The Theorem 6 construction in
// internal/core is a chain of sorts and sequential passes; Scan and
// Appender are the sequential passes, costing one parallel I/O per
// stripe just like the sorter itself.

// Scan streams v's records in order, calling fn with the record index
// and contents. The record slice is reused between calls; fn must copy
// what it keeps.
func Scan(v *Vec, fn func(i int, rec []pdm.Word)) {
	in := newWordReader(v.M, v.Start, v.Words())
	rec := make([]pdm.Word, v.RecWords)
	for i := 0; i < v.N; i++ {
		for j := range rec {
			w, ok := in.next()
			if !ok {
				panic("extsort: short read during Scan")
			}
			rec[j] = w
		}
		fn(i, rec)
	}
}

// Reader streams a vector's records pull-style, one parallel I/O per
// stripe. It is the building block for merge-joins over sorted vectors.
type Reader struct {
	r   *recReader
	out []pdm.Word
}

// NewVecReader starts a record stream over v.
func NewVecReader(v *Vec) *Reader {
	return &Reader{
		r:   newRecReader(v.M, v.Start, v.RecWords, v.N),
		out: make([]pdm.Word, v.RecWords),
	}
}

// Next returns the next record and whether one was available. The slice
// is reused between calls; callers must copy what they keep.
func (r *Reader) Next() ([]pdm.Word, bool) {
	if !r.r.ok {
		return nil, false
	}
	copy(r.out, r.r.head)
	r.r.advance()
	return r.out, true
}

// Appender accumulates fixed-width records into a stripe region,
// flushing one stripe per parallel I/O.
type Appender struct {
	w     *wordWriter
	m     *pdm.Machine
	start int
	width int
	n     int
	done  bool
}

// NewAppender starts a record stream at startStripe.
func NewAppender(m *pdm.Machine, startStripe, recWords int) *Appender {
	return &Appender{w: newWordWriter(m, startStripe), m: m, start: startStripe, width: recWords}
}

// Append adds one record; it must hold exactly recWords words.
func (a *Appender) Append(rec []pdm.Word) {
	if a.done {
		panic("extsort: Append after Vec")
	}
	if len(rec) != a.width {
		panic("extsort: record width mismatch in Append")
	}
	a.w.write(rec)
	a.n++
}

// Len returns the number of records appended so far.
func (a *Appender) Len() int { return a.n }

// Vec flushes the stream and returns the resulting vector. The appender
// must not be used afterwards.
func (a *Appender) Vec() *Vec {
	a.w.flush()
	a.done = true
	return &Vec{M: a.m, Start: a.start, RecWords: a.width, N: a.n}
}

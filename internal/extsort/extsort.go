// Package extsort implements external multiway mergesort in the parallel
// disk model.
//
// Theorem 6 of the paper states that the static dictionary "can be
// constructed deterministically in time proportional to the time it
// takes to sort nd records", and its construction procedure is a chain
// of sorts (pairs by right vertex, then by left vertex, then the final
// assignment array by field index). This package supplies that sorting
// substrate: records of fixed word width stored in consecutive stripes
// are sorted with striped I/O — sequential run formation followed by
// R-way merging — so the construction's I/O cost can be measured and
// compared against the sort bound (experiment E4-thm6).
package extsort

import (
	"fmt"
	"sort"

	"pdmdict/internal/pdm"
)

// Vec describes a vector of fixed-width records stored in consecutive
// logical stripes of a machine, starting at stripe Start. Records are
// packed word-contiguously and may straddle stripe boundaries.
type Vec struct {
	M        *pdm.Machine
	Start    int // first stripe
	RecWords int // words per record
	N        int // number of records
}

// Words returns the total payload size in words.
func (v *Vec) Words() int { return v.N * v.RecWords }

// Stripes returns how many stripes the vector occupies.
func (v *Vec) Stripes() int {
	sw := v.M.D() * v.M.B()
	return (v.Words() + sw - 1) / sw
}

// SortStripes returns the region size Sort needs for BOTH the data
// region and the scratch region: the vector itself plus the padding Sort
// introduces by aligning runs to stripe boundaries (at most one stripe
// per run, and there are at most ⌈stripes/memStripes⌉ runs at any
// level). Callers must place the scratch region — and anything that
// follows the data region — at least this many stripes away.
func (v *Vec) SortStripes(memStripes int) int {
	s := v.Stripes()
	return s + (s+memStripes-1)/memStripes + 2
}

// wordReader streams the words of a stripe region, one parallel I/O per
// stripe.
type wordReader struct {
	m      *pdm.Machine
	stripe int
	limit  int // words remaining
	buf    []pdm.Word
	pos    int
}

func newWordReader(m *pdm.Machine, startStripe, words int) *wordReader {
	return &wordReader{m: m, stripe: startStripe, limit: words}
}

func (r *wordReader) next() (pdm.Word, bool) {
	if r.limit == 0 {
		return 0, false
	}
	if r.pos == len(r.buf) {
		r.buf = r.m.ReadStripe(r.stripe)
		r.stripe++
		r.pos = 0
	}
	w := r.buf[r.pos]
	r.pos++
	r.limit--
	return w, true
}

// recReader streams fixed-width records with one-record lookahead, the
// shape an R-way merge needs.
type recReader struct {
	wr    *wordReader
	width int
	head  []pdm.Word
	ok    bool
}

func newRecReader(m *pdm.Machine, startStripe, width, nrecs int) *recReader {
	r := &recReader{wr: newWordReader(m, startStripe, width*nrecs), width: width, head: make([]pdm.Word, width)}
	r.advance()
	return r
}

func (r *recReader) advance() {
	for i := 0; i < r.width; i++ {
		w, ok := r.wr.next()
		if !ok {
			r.ok = false
			return
		}
		r.head[i] = w
	}
	r.ok = true
}

// wordWriter streams words into a stripe region, flushing one stripe per
// parallel I/O.
type wordWriter struct {
	m      *pdm.Machine
	stripe int
	buf    []pdm.Word
}

func newWordWriter(m *pdm.Machine, startStripe int) *wordWriter {
	return &wordWriter{m: m, stripe: startStripe, buf: make([]pdm.Word, 0, m.D()*m.B())}
}

func (w *wordWriter) write(words []pdm.Word) {
	for len(words) > 0 {
		space := cap(w.buf) - len(w.buf)
		n := len(words)
		if n > space {
			n = space
		}
		w.buf = append(w.buf, words[:n]...)
		words = words[n:]
		if len(w.buf) == cap(w.buf) {
			w.flush()
		}
	}
}

func (w *wordWriter) flush() {
	if len(w.buf) == 0 {
		return
	}
	w.m.WriteStripe(w.stripe, w.buf)
	w.stripe++
	w.buf = w.buf[:0]
}

// Less orders two records; it must be a strict weak ordering.
type Less func(a, b []pdm.Word) bool

// ByWord returns a Less comparing records lexicographically by the words
// at the given indices.
func ByWord(indices ...int) Less {
	return func(a, b []pdm.Word) bool {
		for _, i := range indices {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	}
}

// Sort sorts v in place using the scratch stripe region beginning at
// scratchStart, which must provide v.SortStripes(memStripes) stripes
// disjoint from the data region; the data region itself must have the
// same slack (run alignment spills up to SortStripes−Stripes stripes
// past the vector during intermediate passes). memStripes models the
// internal memory size M = memStripes·B·D words: run formation sorts
// memStripes stripes at a time, and merging is (memStripes−1)-way.
// memStripes must be at least 3 (two-way merge).
func Sort(v *Vec, scratchStart, memStripes int, less Less) {
	if memStripes < 3 {
		panic(fmt.Sprintf("extsort: memStripes=%d, need ≥ 3", memStripes))
	}
	if v.N <= 1 {
		return
	}
	sw := v.M.D() * v.M.B()
	memWords := memStripes * sw
	runRecs := memWords / v.RecWords
	if runRecs < 1 {
		panic("extsort: a single record exceeds internal memory")
	}

	// Pass 0: run formation, data → scratch.
	type run struct {
		stripe int // start stripe within current region
		recs   int
	}
	var runs []run
	{
		in := newWordReader(v.M, v.Start, v.Words())
		out := newWordWriter(v.M, scratchStart)
		buf := make([]pdm.Word, 0, memWords)
		rec := make([]pdm.Word, v.RecWords)
		remaining := v.N
		stripe := scratchStart
		for remaining > 0 {
			n := runRecs
			if n > remaining {
				n = remaining
			}
			buf = buf[:0]
			for i := 0; i < n*v.RecWords; i++ {
				w, ok := in.next()
				if !ok {
					panic("extsort: short read during run formation")
				}
				buf = append(buf, w)
			}
			sortRun(buf, v.RecWords, less, rec)
			out.write(buf)
			out.flush() // align runs to stripe boundaries
			runs = append(runs, run{stripe: stripe, recs: n})
			stripe = out.stripe
			remaining -= n
		}
	}

	// Merge passes, ping-ponging between scratch and data regions.
	fanIn := memStripes - 1
	src, dst := scratchStart, v.Start
	for len(runs) > 1 {
		var next []run
		out := newWordWriter(v.M, dst)
		stripe := dst
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			total := 0
			readers := make([]*recReader, 0, hi-lo)
			for _, r := range runs[lo:hi] {
				readers = append(readers, newRecReader(v.M, r.stripe, v.RecWords, r.recs))
				total += r.recs
			}
			mergeRuns(readers, less, out)
			out.flush()
			next = append(next, run{stripe: stripe, recs: total})
			stripe = out.stripe
		}
		runs = next
		src, dst = dst, src
	}

	// If the single sorted run ended up in scratch, stream it home.
	if runs[0].stripe != v.Start {
		in := newWordReader(v.M, runs[0].stripe, v.Words())
		out := newWordWriter(v.M, v.Start)
		for {
			w, ok := in.next()
			if !ok {
				break
			}
			out.write([]pdm.Word{w})
		}
		out.flush()
	}
	_ = src
}

// sortRun sorts a packed record buffer in internal memory (free in the
// PDM cost model).
func sortRun(buf []pdm.Word, width int, less Less, tmp []pdm.Word) {
	n := len(buf) / width
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return less(buf[idx[a]*width:idx[a]*width+width], buf[idx[b]*width:idx[b]*width+width])
	})
	sorted := make([]pdm.Word, len(buf))
	for out, in := range idx {
		copy(sorted[out*width:], buf[in*width:in*width+width])
	}
	copy(buf, sorted)
	_ = tmp
}

// mergeRuns performs an R-way merge of the given record streams into
// out. R is small (the merge fan-in), so a linear minimum scan suffices.
func mergeRuns(readers []*recReader, less Less, out *wordWriter) {
	for {
		best := -1
		for i, r := range readers {
			if !r.ok {
				continue
			}
			if best == -1 || less(r.head, readers[best].head) {
				best = i
			}
		}
		if best == -1 {
			return
		}
		out.write(readers[best].head)
		readers[best].advance()
	}
}

// WriteAll lays the given packed record data into v's region. It is the
// standard way to initialize a Vec; data must hold exactly v.Words()
// words.
func WriteAll(v *Vec, data []pdm.Word) {
	if len(data) != v.Words() {
		panic(fmt.Sprintf("extsort: WriteAll got %d words, want %d", len(data), v.Words()))
	}
	out := newWordWriter(v.M, v.Start)
	out.write(data)
	out.flush()
}

// ReadAll streams v's region back as packed record data.
func ReadAll(v *Vec) []pdm.Word {
	in := newWordReader(v.M, v.Start, v.Words())
	out := make([]pdm.Word, 0, v.Words())
	for {
		w, ok := in.next()
		if !ok {
			return out
		}
		out = append(out, w)
	}
}

// Record returns record i of v as a fresh slice, reading the one or two
// stripes it spans.
func Record(v *Vec, i int) []pdm.Word {
	if i < 0 || i >= v.N {
		panic(fmt.Sprintf("extsort: record %d out of range [0,%d)", i, v.N))
	}
	sw := v.M.D() * v.M.B()
	lo := i * v.RecWords
	hi := lo + v.RecWords
	first := v.Start + lo/sw
	last := v.Start + (hi-1)/sw
	var words []pdm.Word
	for s := first; s <= last; s++ {
		words = append(words, v.M.ReadStripe(s)...)
	}
	off := lo - (first-v.Start)*sw
	return words[off : off+v.RecWords]
}

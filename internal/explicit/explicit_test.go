package explicit

import (
	"math/rand"
	"testing"

	"pdmdict/internal/expander"
)

func TestFindBaseSmallMaterialized(t *testing.T) {
	b, err := FindBase(BaseConfig{U: 1 << 10, V: 512, D: 8, N: 16, Eps: 0.25, Seed: 1})
	if err != nil {
		t.Fatalf("FindBase: %v", err)
	}
	if b.MeasuredEps > 0.25 {
		t.Errorf("MeasuredEps = %v", b.MeasuredEps)
	}
	if _, ok := b.Graph.(*expander.Table); !ok {
		t.Errorf("small base not materialized as a table: %T", b.Graph)
	}
	if b.MemoryWords != (1<<10)*8 {
		t.Errorf("MemoryWords = %d, want u·d = %d", b.MemoryWords, (1<<10)*8)
	}
	if b.SeedsTried < 1 {
		t.Errorf("SeedsTried = %d", b.SeedsTried)
	}
}

func TestFindBaseLargeStaysFunctional(t *testing.T) {
	b, err := FindBase(BaseConfig{U: 1 << 24, V: 4096, D: 8, N: 32, Eps: 0.25, Seed: 2})
	if err != nil {
		t.Fatalf("FindBase: %v", err)
	}
	if _, ok := b.Graph.(*expander.Table); ok {
		t.Error("large base materialized; should stay functional")
	}
	if b.MemoryWords >= 100 {
		t.Errorf("functional base claims %d memory words", b.MemoryWords)
	}
}

func TestFindBaseImpossibleTargetFails(t *testing.T) {
	// ε = 1/d is a hard floor (paper, Section 2); demanding far below it
	// must exhaust the search.
	_, err := FindBase(BaseConfig{U: 1 << 10, V: 16, D: 8, N: 16, Eps: 0.01, MaxSeeds: 4, Seed: 3})
	if err == nil {
		t.Fatal("impossible expansion target succeeded")
	}
}

func TestFindBaseConfigErrors(t *testing.T) {
	bad := []BaseConfig{
		{U: 0, V: 8, D: 2, N: 2, Eps: 0.2},
		{U: 8, V: 1, D: 2, N: 2, Eps: 0.2}, // v < d
		{U: 8, V: 8, D: 2, N: 9, Eps: 0.2}, // N > u
		{U: 8, V: 8, D: 2, N: 2, Eps: 1.5}, // eps out of range
		{U: 8, V: 8, D: 2, N: 0, Eps: 0.2}, // N < 1
		{U: 8, V: 8, D: 0, N: 2, Eps: 0.2}, // d < 1
	}
	for i, cfg := range bad {
		if _, err := FindBase(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTelescopeDimensions(t *testing.T) {
	f1 := expander.NewUnstriped(1<<12, 3, 256, 1)
	f2 := expander.NewUnstriped(256, 4, 64, 2)
	tel, err := NewTelescope(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	if tel.LeftSize() != 1<<12 || tel.RightSize() != 64 || tel.Degree() != 12 {
		t.Errorf("telescope dims: u=%d v=%d d=%d", tel.LeftSize(), tel.RightSize(), tel.Degree())
	}
	ns := expander.NeighborSet(tel, 99)
	if len(ns) != 12 {
		t.Fatalf("got %d neighbors", len(ns))
	}
	seen := map[int]bool{}
	for _, y := range ns {
		if y < 0 || y >= 64 {
			t.Fatalf("neighbor %d out of range", y)
		}
		if seen[y] {
			t.Fatalf("multi-edge survived re-mapping: %v", ns)
		}
		seen[y] = true
	}
}

func TestTelescopeMismatchRejected(t *testing.T) {
	f1 := expander.NewUnstriped(1<<12, 3, 256, 1)
	f2 := expander.NewUnstriped(128, 4, 64, 2)
	if _, err := NewTelescope(f1, f2); err == nil {
		t.Fatal("mismatched telescope accepted")
	}
}

func TestTelescopeCompositionExpands(t *testing.T) {
	// Lemma 10: composing two verified expanders keeps the error below
	// 1−(1−ε1)(1−ε2) on sampled sets (the re-mapping can only help).
	eps := 0.25
	b1, err := FindBase(BaseConfig{U: 1 << 16, V: 2048, D: 4, N: 16, Eps: eps, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// F2 must expand the images of F1's sets: up to 16·4 = 64 middle
	// vertices, comfortably inside v2 = 1536.
	b2, err := FindBase(BaseConfig{U: 2048, V: 1536, D: 4, N: 64, Eps: eps, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tel, err := NewTelescope(b1.Graph, b2.Graph)
	if err != nil {
		t.Fatal(err)
	}
	rep := expander.EstimateExpansion(tel, []int{2, 4, 8, 16}, 20, 6)
	bound := 1 - (1-eps)*(1-eps)
	if rep.WorstEpsilon > bound+0.05 {
		t.Errorf("composed ε = %.3f exceeds Lemma 10 bound %.3f", rep.WorstEpsilon, bound)
	}
}

func TestConstructTheorem12(t *testing.T) {
	semi, err := Construct(SemiConfig{U: 1 << 20, N: 32, Eps: 0.4, Gamma: 0.4, DegreePerLevel: 6, Seed: 7})
	if err != nil {
		t.Fatalf("Construct: %v", err)
	}
	if semi.Levels < 1 || semi.Levels > 8 {
		t.Errorf("Levels = %d", semi.Levels)
	}
	if semi.Graph.LeftSize() != 1<<20 {
		t.Errorf("LeftSize = %d", semi.Graph.LeftSize())
	}
	// The composed graph must actually expand: audit it.
	rep := expander.EstimateExpansion(semi.Graph, []int{2, 8, 32}, 15, 8)
	if rep.WorstEpsilon > 0.4+0.05 {
		t.Errorf("Theorem 12 graph ε = %.3f above target 0.4", rep.WorstEpsilon)
	}
	if semi.MemoryWords <= 0 {
		t.Errorf("MemoryWords = %d", semi.MemoryWords)
	}
	if len(semi.Bases) != semi.Levels {
		t.Errorf("%d bases for %d levels", len(semi.Bases), semi.Levels)
	}
}

func TestConstructMemoryShrinksWithGamma(t *testing.T) {
	// Smaller Gamma → smaller first-level right side? No: Gamma governs
	// the SHRINK PER LEVEL; the memory is dominated by materialized base
	// tables with left side ≤ MaterializeLimit. What must hold is the
	// qualitative Theorem 12 statement: memory stays far below u.
	semi, err := Construct(SemiConfig{U: 1 << 22, N: 16, Eps: 0.4, Gamma: 0.5, DegreePerLevel: 6, Seed: 9})
	if err != nil {
		t.Fatalf("Construct: %v", err)
	}
	if uint64(semi.MemoryWords) >= semi.Graph.LeftSize() {
		t.Errorf("memory %d words not sublinear in u = %d", semi.MemoryWords, semi.Graph.LeftSize())
	}
}

func TestConstructConfigErrors(t *testing.T) {
	bad := []SemiConfig{
		{U: 0, N: 4, Eps: 0.2},
		{U: 100, N: 0, Eps: 0.2},
		{U: 100, N: 4, Eps: 0},
		{U: 100, N: 4, Eps: 0.2, Gamma: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Construct(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTrivialStripeContract(t *testing.T) {
	g := expander.NewUnstriped(1<<16, 5, 200, 10)
	s := NewTrivialStripe(g)
	if s.RightSize() != 5*200 || s.StripeSize() != 200 || s.Degree() != 5 {
		t.Errorf("dims: v=%d stripe=%d d=%d", s.RightSize(), s.StripeSize(), s.Degree())
	}
	probe := make([]uint64, 100)
	rng := rand.New(rand.NewSource(11))
	for i := range probe {
		probe[i] = rng.Uint64() % s.LeftSize()
	}
	if ok, bad := expander.CheckStriped(s, probe); !ok {
		t.Errorf("striping contract violated at x=%d", bad)
	}
}

func TestTrivialStripeCostsFactorD(t *testing.T) {
	g := expander.NewUnstriped(1<<16, 7, 128, 12)
	s := NewTrivialStripe(g)
	if s.RightSize() != g.Degree()*g.RightSize() {
		t.Errorf("space factor: striped v = %d, want d·v = %d", s.RightSize(), g.Degree()*g.RightSize())
	}
}

// Package explicit implements Section 5 of the paper: semi-explicit
// expander constructions for external memory algorithms.
//
// The building blocks:
//
//   - Base expanders (Theorem 9, Capalbo et al. [6]): slightly
//     unbalanced expanders whose representation fits in internal memory
//     and which "can be found probabilistically in time poly(s)". This
//     package takes that option literally: FindBase searches seeded
//     candidate graphs and *verifies* their expansion by sampling before
//     accepting one, materializing small graphs as in-memory tables so
//     their internal-memory footprint is measurable (the O(u^β/ε^c)
//     words of Corollary 1).
//   - The telescope product (Lemma 10, after Ta-Shma et al. [18]):
//     composing F1 : U1×[d1] → V1 with F2 : V1×[d2] → V2 yields an
//     expander U1×([d1]×[d2]) → V2 of degree d1·d2 and error
//     1−(1−ε1)(1−ε2), with multi-edges re-mapped deterministically.
//   - The recursive family (Lemma 11) and the Theorem 12 wrapper: for
//     u = poly(N), a constant number of telescope levels reaches
//     v = O(N·d) with degree polylog(u) and O(N^β) words of
//     pre-processed internal memory.
//   - TrivialStripe (end of Section 5): explicit constructions are not
//     striped; copying the right side once per stripe makes any graph
//     striped at a factor-d space cost, which is how the dictionaries
//     consume these graphs in the parallel disk model (the alternative
//     being the parallel disk head model, where striping is unneeded).
package explicit

import (
	"fmt"
	"math"

	"pdmdict/internal/expander"
)

// Base is a verified base expander together with its internal-memory
// accounting.
type Base struct {
	// Graph is the verified expander. Small universes are materialized
	// as adjacency tables (pre-processed internal memory, as in
	// Corollary 1); larger ones stay functional.
	Graph expander.Graph
	// MeasuredEps is the worst sampled expansion error.
	MeasuredEps float64
	// SeedsTried counts the probabilistic search's attempts.
	SeedsTried int
	// MemoryWords is the representation's internal-memory footprint in
	// words: u·d for a materialized table, O(1) for a functional graph.
	MemoryWords int
}

// BaseConfig parameterizes FindBase.
type BaseConfig struct {
	// U, V, D are the graph dimensions (left size, right size, degree).
	U uint64
	V int
	D int
	// N is the set size up to which expansion is verified.
	N int
	// Eps is the target expansion error: every sampled S with |S| ≤ N
	// must have |Γ(S)| ≥ (1−Eps)·d·|S|.
	Eps float64
	// Trials is the number of sampled sets per size class; 0 defaults
	// to 32.
	Trials int
	// MaxSeeds bounds the search; 0 defaults to 64.
	MaxSeeds int
	// Seed starts the search.
	Seed uint64
	// MaterializeLimit is the largest u stored as a table; 0 defaults
	// to 1<<16.
	MaterializeLimit uint64
}

func (c *BaseConfig) normalize() error {
	if c.U == 0 || c.V < c.D || c.D < 1 {
		return fmt.Errorf("explicit: invalid dimensions u=%d v=%d d=%d", c.U, c.V, c.D)
	}
	if c.N < 1 || uint64(c.N) > c.U {
		return fmt.Errorf("explicit: invalid N=%d for u=%d", c.N, c.U)
	}
	if c.Eps <= 0 || c.Eps >= 1 {
		return fmt.Errorf("explicit: Eps %v outside (0,1)", c.Eps)
	}
	if c.Trials == 0 {
		c.Trials = 32
	}
	if c.MaxSeeds == 0 {
		c.MaxSeeds = 64
	}
	if c.MaterializeLimit == 0 {
		c.MaterializeLimit = 1 << 16
	}
	return nil
}

// FindBase searches seeded candidate graphs until one verifies as an
// (N, Eps)-expander on sampled sets. This is the probabilistic
// construction Theorem 9 licenses, with verification in place of the
// theorem's guarantee.
func FindBase(cfg BaseConfig) (*Base, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	sizes := sampleSizes(cfg.N)
	for try := 0; try < cfg.MaxSeeds; try++ {
		g := expander.NewUnstriped(cfg.U, cfg.D, cfg.V, cfg.Seed+uint64(try)*0x9e3779b97f4a7c15)
		rep := expander.EstimateExpansion(g, sizes, cfg.Trials, int64(cfg.Seed)+int64(try))
		if rep.WorstEpsilon <= cfg.Eps {
			b := &Base{MeasuredEps: rep.WorstEpsilon, SeedsTried: try + 1}
			if cfg.U <= cfg.MaterializeLimit {
				b.Graph = materialize(g)
				b.MemoryWords = int(cfg.U) * cfg.D
			} else {
				b.Graph = g
				b.MemoryWords = 4 // dimensions + seed
			}
			return b, nil
		}
	}
	return nil, fmt.Errorf("explicit: no (N=%d, ε=%.3f)-expander found in %d seeds (u=%d v=%d d=%d)",
		cfg.N, cfg.Eps, cfg.MaxSeeds, cfg.U, cfg.V, cfg.D)
}

// sampleSizes picks the set sizes to audit: powers of two up to N.
func sampleSizes(n int) []int {
	var sizes []int
	for s := 1; s <= n; s *= 2 {
		sizes = append(sizes, s)
	}
	if len(sizes) == 0 || sizes[len(sizes)-1] != n {
		sizes = append(sizes, n)
	}
	return sizes
}

// materialize stores a graph as an adjacency table.
func materialize(g expander.Graph) *expander.Table {
	u := int(g.LeftSize())
	adj := make([][]int, u)
	for x := 0; x < u; x++ {
		adj[x] = expander.NeighborSet(g, uint64(x))
	}
	return &expander.Table{V: g.RightSize(), Adj: adj}
}

// Telescope is the composition of Lemma 10: neighbor (e1, e2) of x is
// F2(F1(x, e1), e2), with duplicate right vertices re-mapped by linear
// probing ("re-map all but one edge in each multi-edge in an appropriate
// and fixed manner"), which cannot decrease expansion.
type Telescope struct {
	f1, f2 expander.Graph
}

// NewTelescope composes f1 and f2; f1's right part must be f2's left
// part.
func NewTelescope(f1, f2 expander.Graph) (*Telescope, error) {
	if uint64(f1.RightSize()) != f2.LeftSize() {
		return nil, fmt.Errorf("explicit: telescope mismatch: |V1|=%d but |U2|=%d",
			f1.RightSize(), f2.LeftSize())
	}
	return &Telescope{f1: f1, f2: f2}, nil
}

// LeftSize returns |U1|.
func (t *Telescope) LeftSize() uint64 { return t.f1.LeftSize() }

// RightSize returns |V2|.
func (t *Telescope) RightSize() int { return t.f2.RightSize() }

// Degree returns d1·d2.
func (t *Telescope) Degree() int { return t.f1.Degree() * t.f2.Degree() }

// Neighbors evaluates all d1·d2 composed neighbors (the paper notes
// that evaluating all neighbors is what the dictionaries do anyway).
func (t *Telescope) Neighbors(x uint64, dst []int) []int {
	mid := t.f1.Neighbors(x, make([]int, 0, t.f1.Degree()))
	seen := make(map[int]bool, t.Degree())
	v := t.RightSize()
	buf := make([]int, 0, t.f2.Degree())
	for _, m := range mid {
		buf = t.f2.Neighbors(uint64(m), buf[:0])
		for _, y := range buf {
			for seen[y] && len(seen) < v {
				y = (y + 1) % v
			}
			seen[y] = true
			dst = append(dst, y)
		}
	}
	return dst
}

// SemiConfig parameterizes the Theorem 12 construction.
type SemiConfig struct {
	// U is the universe size, assumed polynomial in N.
	U uint64
	// N is the target expander's set-size parameter.
	N int
	// Eps is the target total error 1−(1−ε')^k.
	Eps float64
	// Gamma is the per-level shrink exponent (the paper's β'/c):
	// u_{i+1} = u_i^{1−Gamma}. Smaller Gamma means less internal memory
	// (smaller base tables) but more levels and higher degree — the
	// trade-off Theorem 12 quantifies. 0 defaults to 0.5.
	Gamma float64
	// DegreePerLevel is each base expander's degree; 0 defaults to 8.
	DegreePerLevel int
	// Seed, Trials, MaxSeeds drive the per-level base searches.
	Seed     uint64
	Trials   int
	MaxSeeds int
}

// Semi is the Theorem 12 result: a verified (N, ε)-expander built as a
// telescope of base expanders, with degree polylog(u) and measured
// internal-memory usage.
type Semi struct {
	// Graph is the composed expander.
	Graph expander.Graph
	// Levels is the number of telescope levels (the paper's k = O(1)
	// when u = poly(N)).
	Levels int
	// MemoryWords sums the base representations' internal memory.
	MemoryWords int
	// PerLevelEps is the verified per-level error ε′.
	PerLevelEps float64
	// Bases records each level's search outcome.
	Bases []*Base
}

// Construct builds the Theorem 12 expander.
func Construct(cfg SemiConfig) (*Semi, error) {
	if cfg.U == 0 || cfg.N < 1 {
		return nil, fmt.Errorf("explicit: invalid U=%d N=%d", cfg.U, cfg.N)
	}
	if cfg.Eps <= 0 || cfg.Eps >= 1 {
		return nil, fmt.Errorf("explicit: Eps %v outside (0,1)", cfg.Eps)
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = 0.5
	}
	if cfg.Gamma <= 0 || cfg.Gamma >= 1 {
		return nil, fmt.Errorf("explicit: Gamma %v outside (0,1)", cfg.Gamma)
	}
	if cfg.DegreePerLevel == 0 {
		cfg.DegreePerLevel = 8
	}

	// Plan the level sizes first so the per-level error budget is known:
	// shrink u_i until the next right side would fit v = O(N·d_total).
	var sizes []uint64
	cur := cfg.U
	d := 1
	for {
		d *= cfg.DegreePerLevel
		next := uint64(math.Ceil(math.Pow(float64(cur), 1-cfg.Gamma)))
		floor := uint64(4 * cfg.N * d)
		if next < floor {
			next = floor
		}
		sizes = append(sizes, next)
		cur = next
		if next <= floor || len(sizes) >= 8 {
			break
		}
	}
	k := len(sizes)
	perLevel := 1 - math.Pow(1-cfg.Eps, 1/float64(k))

	semi := &Semi{Levels: k, PerLevelEps: perLevel}
	var graph expander.Graph
	left := cfg.U
	for i, right := range sizes {
		base, err := FindBase(BaseConfig{
			U:        left,
			V:        int(right),
			D:        cfg.DegreePerLevel,
			N:        cfg.N,
			Eps:      perLevel,
			Trials:   cfg.Trials,
			MaxSeeds: cfg.MaxSeeds,
			Seed:     cfg.Seed + uint64(i)*0x6a09e667f3bcc909,
		})
		if err != nil {
			return nil, fmt.Errorf("explicit: level %d: %w", i, err)
		}
		semi.Bases = append(semi.Bases, base)
		semi.MemoryWords += base.MemoryWords
		if graph == nil {
			graph = base.Graph
		} else {
			graph, err = NewTelescope(graph, base.Graph)
			if err != nil {
				return nil, err
			}
		}
		left = right
	}
	semi.Graph = graph
	return semi, nil
}

// TrivialStripe makes any graph striped by copying the right side once
// per stripe: the neighbor of x in stripe i is F(x, i) within copy i.
// This is the paper's closing remark in Section 5, incurring a factor-d
// increase in the right part (and hence external space).
type TrivialStripe struct {
	g expander.Graph
}

// NewTrivialStripe wraps g.
func NewTrivialStripe(g expander.Graph) *TrivialStripe { return &TrivialStripe{g: g} }

// LeftSize returns u.
func (s *TrivialStripe) LeftSize() uint64 { return s.g.LeftSize() }

// RightSize returns d·v (one copy of V per stripe).
func (s *TrivialStripe) RightSize() int { return s.g.Degree() * s.g.RightSize() }

// Degree returns d.
func (s *TrivialStripe) Degree() int { return s.g.Degree() }

// StripeSize returns v.
func (s *TrivialStripe) StripeSize() int { return s.g.RightSize() }

// StripeNeighbor returns F(x, i) within stripe i's copy of V.
func (s *TrivialStripe) StripeNeighbor(x uint64, i int) int {
	return expander.NeighborSet(s.g, x)[i]
}

// Neighbors appends the global indices i·v + F(x, i).
func (s *TrivialStripe) Neighbors(x uint64, dst []int) []int {
	ns := expander.NeighborSet(s.g, x)
	v := s.g.RightSize()
	for i, y := range ns {
		dst = append(dst, i*v+y)
	}
	return dst
}

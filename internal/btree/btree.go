// Package btree implements the B-tree baseline of the paper's Section
// 1.2 in the parallel disk model: the associative structure file systems
// actually use, against which the dictionaries' 1-I/O lookups are
// motivated ("in most settings it takes 3 disk accesses before the
// contents of the block is available").
//
// Two node geometries are provided. Plain nodes occupy one block each
// (fanout Θ(B), nodes spread round-robin over the disks), so a lookup
// costs height ≈ log_B n parallel I/Os. Striped nodes occupy one
// logical stripe each (fanout Θ(B·D)), the standard way to exploit D
// disks by striping; the query cost Θ(log_BD n) shows the point the
// paper makes in Section 1 — no asymptotic speedup over one disk unless
// D is enormous.
package btree

import (
	"fmt"

	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// Config parameterizes a tree.
type Config struct {
	// SatWords is the satellite size per key, in words.
	SatWords int
	// Striped selects stripe-sized nodes (fanout Θ(B·D)) instead of
	// block-sized nodes (fanout Θ(B)).
	Striped bool
}

// Storage is the device surface the tree runs on: a *pdm.Machine
// directly, or a cache.Cache in front of one (the Section 1.2
// "negligible due to caching" configuration).
type Storage interface {
	ReadBlock(a pdm.Addr) []pdm.Word
	WriteBlock(a pdm.Addr, data []pdm.Word)
	ReadStripe(stripe int) []pdm.Word
	WriteStripe(stripe int, data []pdm.Word)
	D() int
	B() int
}

// spanner is implemented by storages that can tag batches with span
// labels (pdm.Machine, and cache.Cache delegating to its machine).
type spanner interface {
	Span(tag string) func()
}

var noopEnd = func() {}

func noSpan(string) func() { return noopEnd }

// Tree is a B-tree over (key, satellite) records.
type Tree struct {
	m    Storage
	span func(string) func()
	cfg  Config

	nodeWords int
	maxLeaf   int // max records in a leaf
	maxInt    int // max keys in an internal node

	root   int
	nNodes int
	height int
	n      int
}

// Node layout:
//
//	word0: 1 = leaf, 0 = internal
//	word1: count
//	leaf:     count records of (key, SatWords) words
//	internal: count keys, then count+1 child node ids
const (
	nodeLeaf     = 1
	nodeInternal = 0
)

// New creates an empty tree on the given storage.
func New(m Storage, cfg Config) (*Tree, error) {
	if cfg.SatWords < 0 {
		return nil, fmt.Errorf("btree: negative SatWords")
	}
	nw := m.B()
	if cfg.Striped {
		nw = m.B() * m.D()
	}
	t := &Tree{
		m:         m,
		span:      noSpan,
		cfg:       cfg,
		nodeWords: nw,
		maxLeaf:   (nw - 2) / (1 + cfg.SatWords),
		maxInt:    (nw - 3) / 2,
	}
	if s, ok := m.(spanner); ok {
		t.span = s.Span
	}
	if t.maxLeaf < 2 || t.maxInt < 2 {
		return nil, fmt.Errorf("btree: node of %d words too small for fanout 2", nw)
	}
	t.root = t.alloc()
	leaf := make([]pdm.Word, t.nodeWords)
	leaf[0] = nodeLeaf
	t.writeNode(t.root, leaf)
	t.height = 1
	return t, nil
}

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.n }

// Height returns the number of nodes on a root-to-leaf path — the
// lookup cost in parallel I/Os.
func (t *Tree) Height() int { return t.height }

// Nodes returns the number of allocated nodes (space accounting).
func (t *Tree) Nodes() int { return t.nNodes }

// Fanout returns the maximum internal fanout.
func (t *Tree) Fanout() int { return t.maxInt + 1 }

func (t *Tree) alloc() int {
	id := t.nNodes
	t.nNodes++
	return id
}

// readNode costs one parallel I/O in both geometries.
func (t *Tree) readNode(id int) []pdm.Word {
	if t.cfg.Striped {
		return t.m.ReadStripe(id)
	}
	return t.m.ReadBlock(pdm.Addr{Disk: id % t.m.D(), Block: id / t.m.D()})
}

func (t *Tree) writeNode(id int, data []pdm.Word) {
	if t.cfg.Striped {
		t.m.WriteStripe(id, data)
		return
	}
	t.m.WriteBlock(pdm.Addr{Disk: id % t.m.D(), Block: id / t.m.D()}, data)
}

// Leaf record access.
func (t *Tree) leafRec(node []pdm.Word, i int) []pdm.Word {
	off := 2 + i*(1+t.cfg.SatWords)
	return node[off : off+1+t.cfg.SatWords]
}

// Internal node access.
func intKey(node []pdm.Word, i int) pdm.Word { return node[2+i] }
func (t *Tree) intChild(node []pdm.Word, i int) int {
	count := int(node[1])
	return int(node[2+count+i])
}

// Lookup returns a copy of key's satellite and whether it is present.
// Cost: Height() parallel I/Os.
func (t *Tree) Lookup(key pdm.Word) ([]pdm.Word, bool) {
	defer t.span(obs.TagLookup)()
	node := t.readNode(t.root)
	for node[0] == nodeInternal {
		count := int(node[1])
		i := 0
		for i < count && key >= intKey(node, i) {
			i++
		}
		node = t.readNode(t.intChild(node, i))
	}
	count := int(node[1])
	for i := 0; i < count; i++ {
		rec := t.leafRec(node, i)
		if rec[0] == key {
			out := make([]pdm.Word, t.cfg.SatWords)
			copy(out, rec[1:])
			return out, true
		}
	}
	return nil, false
}

// Contains reports presence at Lookup cost.
func (t *Tree) Contains(key pdm.Word) bool {
	_, ok := t.Lookup(key)
	return ok
}

// Insert stores (key, sat), replacing any existing satellite. Splits are
// performed preemptively on the way down, so the pass is single-descent.
func (t *Tree) Insert(key pdm.Word, sat []pdm.Word) error {
	if len(sat) != t.cfg.SatWords {
		return fmt.Errorf("btree: satellite of %d words, config says %d", len(sat), t.cfg.SatWords)
	}
	defer t.span(obs.TagInsert)()
	rootNode := t.readNode(t.root)
	if t.isFull(rootNode) {
		// Grow: new root above the split halves.
		left := t.root
		mid, right := t.split(left, rootNode)
		newRoot := t.alloc()
		nr := make([]pdm.Word, t.nodeWords)
		nr[0] = nodeInternal
		nr[1] = 1
		nr[2] = mid
		nr[3] = pdm.Word(left)
		nr[4] = pdm.Word(right)
		t.writeNode(newRoot, nr)
		t.root = newRoot
		t.height++
		rootNode = nr
	}
	t.insertNonFull(t.root, rootNode, key, sat)
	return nil
}

func (t *Tree) isFull(node []pdm.Word) bool {
	count := int(node[1])
	if node[0] == nodeLeaf {
		return count >= t.maxLeaf
	}
	return count >= t.maxInt
}

// split divides a full node into two, returning the separator key and
// the new right sibling's id. The left half is written back under the
// original id; keys ≥ separator go right.
func (t *Tree) split(id int, node []pdm.Word) (pdm.Word, int) {
	rightID := t.alloc()
	right := make([]pdm.Word, t.nodeWords)
	count := int(node[1])
	var sep pdm.Word
	if node[0] == nodeLeaf {
		half := count / 2
		sep = t.leafRec(node, half)[0]
		right[0] = nodeLeaf
		right[1] = pdm.Word(count - half)
		for i := half; i < count; i++ {
			copy(t.leafRec(right, i-half), t.leafRec(node, i))
		}
		node[1] = pdm.Word(half)
		t.clearLeafTail(node, half, count)
	} else {
		half := count / 2
		sep = intKey(node, half)
		rCount := count - half - 1
		right[0] = nodeInternal
		right[1] = pdm.Word(rCount)
		for i := 0; i < rCount; i++ {
			right[2+i] = intKey(node, half+1+i)
		}
		for i := 0; i <= rCount; i++ {
			right[2+rCount+i] = node[2+count+half+1+i]
		}
		// Compact the left half: children move up next to the keys.
		children := make([]pdm.Word, half+1)
		copy(children, node[2+count:2+count+half+1])
		node[1] = pdm.Word(half)
		copy(node[2+half:], children)
		for i := 2 + half + half + 1; i < len(node); i++ {
			node[i] = 0
		}
	}
	t.writeNode(id, node)
	t.writeNode(rightID, right)
	return sep, rightID
}

func (t *Tree) clearLeafTail(node []pdm.Word, from, to int) {
	for i := from; i < to; i++ {
		rec := t.leafRec(node, i)
		for j := range rec {
			rec[j] = 0
		}
	}
}

// insertNonFull descends from a non-full node, splitting full children
// preemptively.
func (t *Tree) insertNonFull(id int, node []pdm.Word, key pdm.Word, sat []pdm.Word) {
	for node[0] == nodeInternal {
		count := int(node[1])
		i := 0
		for i < count && key >= intKey(node, i) {
			i++
		}
		childID := t.intChild(node, i)
		child := t.readNode(childID)
		if t.isFull(child) {
			sep, rightID := t.split(childID, child)
			node = t.insertSeparator(node, i, sep, rightID)
			t.writeNode(id, node)
			if key >= sep {
				childID = rightID
				child = t.readNode(childID)
			} else {
				child = t.readNode(childID)
			}
		}
		id, node = childID, child
	}
	// Leaf: replace or append then sort-insert.
	count := int(node[1])
	for i := 0; i < count; i++ {
		rec := t.leafRec(node, i)
		if rec[0] == key {
			copy(rec[1:], sat)
			t.writeNode(id, node)
			return
		}
	}
	// Find position, shift right.
	pos := 0
	for pos < count && t.leafRec(node, pos)[0] < key {
		pos++
	}
	for i := count; i > pos; i-- {
		copy(t.leafRec(node, i), t.leafRec(node, i-1))
	}
	rec := t.leafRec(node, pos)
	rec[0] = key
	copy(rec[1:], sat)
	node[1] = pdm.Word(count + 1)
	t.writeNode(id, node)
	t.n++
}

// insertSeparator rebuilds an internal node with (sep, rightID) admitted
// at key position i.
func (t *Tree) insertSeparator(node []pdm.Word, i int, sep pdm.Word, rightID int) []pdm.Word {
	count := int(node[1])
	keys := make([]pdm.Word, 0, count+1)
	children := make([]pdm.Word, 0, count+2)
	keys = append(keys, node[2:2+count]...)
	children = append(children, node[2+count:2+count+count+1]...)
	keys = append(keys[:i], append([]pdm.Word{sep}, keys[i:]...)...)
	children = append(children[:i+1], append([]pdm.Word{pdm.Word(rightID)}, children[i+1:]...)...)
	out := make([]pdm.Word, t.nodeWords)
	out[0] = nodeInternal
	out[1] = pdm.Word(count + 1)
	copy(out[2:], keys)
	copy(out[2+count+1:], children)
	return out
}

// Range calls fn for every stored (key, satellite) with lo ≤ key ≤ hi,
// in ascending key order, stopping early if fn returns false. This is
// the "additional property" of B-trees the paper's Section 1.2 notes
// that hash-style dictionaries do not provide ("one does not need the
// additional properties of B-trees (such as range searching)") — it is
// here so the trade-off is demonstrable, not hidden. The satellite
// slice passed to fn is reused between calls.
//
// Cost: one parallel I/O per node visited — Θ(height + leaves touched).
func (t *Tree) Range(lo, hi pdm.Word, fn func(key pdm.Word, sat []pdm.Word) bool) {
	if lo > hi {
		return
	}
	t.rangeNode(t.root, lo, hi, fn)
}

// rangeNode descends and scans; it returns false when fn stopped the
// iteration.
func (t *Tree) rangeNode(id int, lo, hi pdm.Word, fn func(pdm.Word, []pdm.Word) bool) bool {
	node := t.readNode(id)
	count := int(node[1])
	if node[0] == nodeLeaf {
		for i := 0; i < count; i++ {
			rec := t.leafRec(node, i)
			if rec[0] < lo {
				continue
			}
			if rec[0] > hi {
				return false
			}
			if !fn(rec[0], rec[1:]) {
				return false
			}
		}
		return true
	}
	// Internal: children i covers keys < key_i (and the last child the
	// tail); visit every child whose span intersects [lo, hi].
	for i := 0; i <= count; i++ {
		if i < count && intKey(node, i) <= lo {
			continue // this child's span ends at key_i ≤ lo
		}
		if !t.rangeNode(t.intChild(node, i), lo, hi, fn) {
			return false
		}
		if i < count && intKey(node, i) > hi {
			return true
		}
	}
	return true
}

// Delete removes key and reports whether it was present. Deletion is
// lazy (no rebalancing): the tree remains valid, and the space of
// deleted records is reclaimed on later inserts into the same leaf —
// sufficient for a baseline whose role is read-path comparison.
func (t *Tree) Delete(key pdm.Word) bool {
	defer t.span(obs.TagDelete)()
	id := t.root
	node := t.readNode(id)
	for node[0] == nodeInternal {
		count := int(node[1])
		i := 0
		for i < count && key >= intKey(node, i) {
			i++
		}
		id = t.intChild(node, i)
		node = t.readNode(id)
	}
	count := int(node[1])
	for i := 0; i < count; i++ {
		if t.leafRec(node, i)[0] == key {
			for j := i; j < count-1; j++ {
				copy(t.leafRec(node, j), t.leafRec(node, j+1))
			}
			t.clearLeafTail(node, count-1, count)
			node[1] = pdm.Word(count - 1)
			t.writeNode(id, node)
			t.n--
			return true
		}
	}
	return false
}

package btree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pdmdict/internal/pdm"
)

func newTree(t *testing.T, d, b int, cfg Config) (*Tree, *pdm.Machine) {
	t.Helper()
	m := pdm.NewMachine(pdm.Config{D: d, B: b})
	tr, err := New(m, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr, m
}

func TestEmptyTree(t *testing.T) {
	tr, _ := newTree(t, 4, 16, Config{SatWords: 1})
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("empty tree: Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Lookup(5); ok {
		t.Error("empty tree contains 5")
	}
	if tr.Delete(5) {
		t.Error("empty tree deleted 5")
	}
}

func TestInsertLookupDelete(t *testing.T) {
	tr, _ := newTree(t, 4, 16, Config{SatWords: 2})
	if err := tr.Insert(10, []pdm.Word{100, 101}); err != nil {
		t.Fatal(err)
	}
	sat, ok := tr.Lookup(10)
	if !ok || sat[0] != 100 || sat[1] != 101 {
		t.Fatalf("Lookup = %v %v", sat, ok)
	}
	if err := tr.Insert(10, []pdm.Word{200, 201}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after update", tr.Len())
	}
	if sat, _ := tr.Lookup(10); sat[0] != 200 {
		t.Error("update did not stick")
	}
	if !tr.Delete(10) || tr.Delete(10) || tr.Contains(10) {
		t.Error("delete sequence wrong")
	}
}

func TestManyKeysSortedAndRandom(t *testing.T) {
	for name, gen := range map[string]func(i int) pdm.Word{
		"ascending":  func(i int) pdm.Word { return pdm.Word(i) },
		"descending": func(i int) pdm.Word { return pdm.Word(5000 - i) },
		"pseudo":     func(i int) pdm.Word { return pdm.Word((i*2654435761 + 7) % (1 << 30)) },
	} {
		tr, _ := newTree(t, 4, 32, Config{SatWords: 1})
		n := 3000
		for i := 0; i < n; i++ {
			if err := tr.Insert(gen(i), []pdm.Word{pdm.Word(i)}); err != nil {
				t.Fatalf("%s: insert %d: %v", name, i, err)
			}
		}
		if tr.Len() != n {
			t.Fatalf("%s: Len = %d, want %d", name, tr.Len(), n)
		}
		for i := 0; i < n; i++ {
			sat, ok := tr.Lookup(gen(i))
			if !ok || sat[0] != pdm.Word(i) {
				t.Fatalf("%s: key %d lost or wrong", name, i)
			}
		}
	}
}

func TestHeightIsLogarithmic(t *testing.T) {
	tr, _ := newTree(t, 4, 32, Config{SatWords: 0})
	n := 10000
	for i := 0; i < n; i++ {
		tr.Insert(pdm.Word(i*7+1), nil)
	}
	// Fanout ≈ 15: height should be ~log_8(10000) + 1 ≈ 6, certainly < 10.
	if tr.Height() > 10 {
		t.Errorf("height = %d for n=%d, fanout=%d", tr.Height(), n, tr.Fanout())
	}
}

func TestLookupCostEqualsHeight(t *testing.T) {
	tr, m := newTree(t, 4, 32, Config{SatWords: 1})
	for i := 0; i < 5000; i++ {
		tr.Insert(pdm.Word(i*13+1), []pdm.Word{1})
	}
	h := int64(tr.Height())
	for i := 0; i < 50; i++ {
		before := m.Stats()
		tr.Lookup(pdm.Word(i*13 + 1))
		if d := m.Stats().Sub(before).ParallelIOs; d != h {
			t.Fatalf("lookup = %d I/Os, want height %d", d, h)
		}
	}
}

func TestStripedNodesReduceHeight(t *testing.T) {
	n := 20000
	plain, _ := newTree(t, 8, 16, Config{SatWords: 0})
	striped, _ := newTree(t, 8, 16, Config{SatWords: 0, Striped: true})
	for i := 0; i < n; i++ {
		k := pdm.Word(i*31 + 3)
		plain.Insert(k, nil)
		striped.Insert(k, nil)
	}
	if striped.Height() >= plain.Height() {
		t.Errorf("striped height %d not below plain height %d (fanouts %d vs %d)",
			striped.Height(), plain.Height(), striped.Fanout(), plain.Fanout())
	}
	// Striped height ≈ log_{BD}(n): sanity-check the Θ(log_BD n) claim.
	bd := float64(8 * 16)
	want := math.Log(float64(n))/math.Log(bd/2) + 2
	if float64(striped.Height()) > want {
		t.Errorf("striped height %d above log_BD bound %.1f", striped.Height(), want)
	}
	for i := 0; i < n; i += 97 {
		if !striped.Contains(pdm.Word(i*31 + 3)) {
			t.Fatalf("striped tree lost key %d", i)
		}
	}
}

func TestConfigErrors(t *testing.T) {
	m := pdm.NewMachine(pdm.Config{D: 2, B: 4})
	if _, err := New(m, Config{SatWords: -1}); err == nil {
		t.Error("negative SatWords accepted")
	}
	if _, err := New(m, Config{SatWords: 10}); err == nil {
		t.Error("record larger than node accepted")
	}
}

// Property: the tree agrees with a map oracle under mixed workloads.
func TestPropertyTreeMatchesMap(t *testing.T) {
	f := func(ops []uint16, striped bool) bool {
		m := pdm.NewMachine(pdm.Config{D: 2, B: 16})
		tr, err := New(m, Config{SatWords: 1, Striped: striped})
		if err != nil {
			return false
		}
		oracle := map[pdm.Word]pdm.Word{}
		for _, op := range ops {
			k := pdm.Word(op % 199)
			switch op % 3 {
			case 0:
				v := pdm.Word(op)
				if tr.Insert(k, []pdm.Word{v}) == nil {
					oracle[k] = v
				}
			case 1:
				_, okOracle := oracle[k]
				if tr.Delete(k) != okOracle {
					return false
				}
				delete(oracle, k)
			case 2:
				sat, ok := tr.Lookup(k)
				v, okOracle := oracle[k]
				if ok != okOracle || (ok && sat[0] != v) {
					return false
				}
			}
		}
		return tr.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: after inserting any set of distinct keys, an in-order check
// via lookups succeeds for every key and fails for keys not inserted.
func TestPropertyMembershipExact(t *testing.T) {
	f := func(raw []uint16) bool {
		m := pdm.NewMachine(pdm.Config{D: 2, B: 16})
		tr, err := New(m, Config{SatWords: 0})
		if err != nil {
			return false
		}
		in := map[pdm.Word]bool{}
		for _, r := range raw {
			k := pdm.Word(r)
			tr.Insert(k, nil)
			in[k] = true
		}
		for x := pdm.Word(0); x < 400; x++ {
			if tr.Contains(x) != in[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRangeScan(t *testing.T) {
	tr, m := newTree(t, 4, 16, Config{SatWords: 1})
	for i := 0; i < 1000; i++ {
		k := pdm.Word(i * 2) // even keys 0..1998
		if err := tr.Insert(k, []pdm.Word{k * 10}); err != nil {
			t.Fatal(err)
		}
	}
	var got []pdm.Word
	before := m.Stats().ParallelIOs
	tr.Range(100, 139, func(k pdm.Word, sat []pdm.Word) bool {
		if sat[0] != k*10 {
			t.Fatalf("satellite of %d = %d", k, sat[0])
		}
		got = append(got, k)
		return true
	})
	rangeIOs := m.Stats().ParallelIOs - before
	want := []pdm.Word{100, 102, 104, 106, 108, 110, 112, 114, 116, 118,
		120, 122, 124, 126, 128, 130, 132, 134, 136, 138}
	if len(got) != len(want) {
		t.Fatalf("got %d keys: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d = %d, want %d", i, got[i], want[i])
		}
	}
	// A 20-key range touches only a handful of nodes, not the whole tree.
	if rangeIOs > int64(tr.Height()+8) {
		t.Errorf("range scan cost %d I/Os for height %d", rangeIOs, tr.Height())
	}
	// Early stop.
	count := 0
	tr.Range(0, 1<<40, func(pdm.Word, []pdm.Word) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop after %d keys, want 5", count)
	}
	// Empty and inverted ranges.
	tr.Range(1, 1, func(pdm.Word, []pdm.Word) bool { t.Error("odd key matched"); return true })
	tr.Range(10, 5, func(pdm.Word, []pdm.Word) bool { t.Error("inverted range matched"); return true })
}

func TestRangeFullScanOrdered(t *testing.T) {
	tr, _ := newTree(t, 2, 16, Config{SatWords: 0})
	rng := rand.New(rand.NewSource(7))
	in := map[pdm.Word]bool{}
	for i := 0; i < 2000; i++ {
		k := pdm.Word(rng.Intn(10000))
		tr.Insert(k, nil)
		in[k] = true
	}
	var prev pdm.Word
	first := true
	seen := 0
	tr.Range(0, 1<<40, func(k pdm.Word, _ []pdm.Word) bool {
		if !first && k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		if !in[k] {
			t.Fatalf("phantom key %d", k)
		}
		first = false
		prev = k
		seen++
		return true
	})
	if seen != len(in) {
		t.Errorf("range saw %d keys, want %d", seen, len(in))
	}
}

func TestRandomChurn(t *testing.T) {
	tr, _ := newTree(t, 4, 32, Config{SatWords: 1})
	rng := rand.New(rand.NewSource(1))
	oracle := map[pdm.Word]pdm.Word{}
	for i := 0; i < 20000; i++ {
		k := pdm.Word(rng.Intn(2000))
		if rng.Intn(3) == 0 {
			delete(oracle, k)
			tr.Delete(k)
		} else {
			v := pdm.Word(i)
			oracle[k] = v
			if err := tr.Insert(k, []pdm.Word{v}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tr.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", tr.Len(), len(oracle))
	}
	for k, v := range oracle {
		sat, ok := tr.Lookup(k)
		if !ok || sat[0] != v {
			t.Fatalf("key %d = %v %v, want %d", k, sat, ok, v)
		}
	}
}

package expander

import (
	"math"
	"math/rand"
)

// This file measures expansion rather than assuming it. The dictionaries
// depend only on two quantities: |Γ(S)| (Definitions 1 and 2) and the
// unique-neighbor structure Φ(S), S′ (Lemmas 4 and 5). Everything here is
// exact for a given S; the Verify/Estimate functions quantify over sets S
// either exhaustively (small universes) or by sampling (large ones).

// NeighborhoodSize returns |Γ(S)| for the given set of left vertices.
func NeighborhoodSize(g Graph, s []uint64) int {
	seen := make(map[int]struct{}, len(s)*g.Degree())
	buf := make([]int, 0, g.Degree())
	for _, x := range s {
		buf = g.Neighbors(x, buf[:0])
		for _, y := range buf {
			seen[y] = struct{}{}
		}
	}
	return len(seen)
}

// EpsilonOf returns the smallest ε such that S achieves (1−ε)d|S|
// neighbors, i.e. ε = 1 − |Γ(S)| / (d|S|). Larger is worse; a graph is an
// (N, ε)-expander iff every S with |S| ≤ N has EpsilonOf(S) ≤ ε.
func EpsilonOf(g Graph, s []uint64) float64 {
	if len(s) == 0 {
		return 0
	}
	gamma := NeighborhoodSize(g, s)
	return 1 - float64(gamma)/float64(g.Degree()*len(s))
}

// UniqueNeighbors returns Φ(S): the right vertices with exactly one
// neighbor in S (Section 4.2). The returned map carries, for each unique
// neighbor node, the single left vertex it belongs to.
func UniqueNeighbors(g Graph, s []uint64) map[int]uint64 {
	count := make(map[int]int, len(s)*g.Degree())
	owner := make(map[int]uint64, len(s)*g.Degree())
	buf := make([]int, 0, g.Degree())
	for _, x := range s {
		buf = g.Neighbors(x, buf[:0])
		for _, y := range buf {
			count[y]++
			owner[y] = x
		}
	}
	phi := make(map[int]uint64)
	for y, c := range count {
		if c == 1 {
			phi[y] = owner[y]
		}
	}
	return phi
}

// UniqueStats summarizes the unique-neighbor structure of a set S.
type UniqueStats struct {
	// Phi is |Φ(S)|, the number of unique neighbor nodes. Lemma 4:
	// Phi ≥ (1−2ε)d|S|.
	Phi int
	// WellCovered is |S′| for the given λ: the number of x ∈ S with at
	// least (1−λ)d unique neighbors. Lemma 5: WellCovered ≥ (1−2ε/λ)|S|.
	WellCovered int
	// PerVertex[x] is |Γ(x) ∩ Φ(S)| for each x ∈ S, in input order.
	PerVertex []int
}

// UniqueNeighborStats computes the quantities of Lemmas 4 and 5 for a set
// S and threshold parameter λ.
func UniqueNeighborStats(g Graph, s []uint64, lambda float64) UniqueStats {
	phi := UniqueNeighbors(g, s)
	d := g.Degree()
	threshold := int(math.Ceil((1 - lambda) * float64(d)))
	st := UniqueStats{Phi: len(phi), PerVertex: make([]int, len(s))}
	buf := make([]int, 0, d)
	for i, x := range s {
		buf = g.Neighbors(x, buf[:0])
		c := 0
		for _, y := range buf {
			if owner, ok := phi[y]; ok && owner == x {
				c++
			}
		}
		st.PerVertex[i] = c
		if c >= threshold {
			st.WellCovered++
		}
	}
	return st
}

// Report is the outcome of an expansion audit over many candidate sets.
type Report struct {
	// SetsChecked is the number of left-vertex sets examined.
	SetsChecked int
	// WorstEpsilon is the largest EpsilonOf over all examined sets.
	WorstEpsilon float64
	// WorstSetSize is the |S| at which WorstEpsilon was attained.
	WorstSetSize int
	// MinGammaRatio is the smallest |Γ(S)|/min(d|S|, v) observed; a value
	// below 1−δ witnesses a δ violation in the Definition 1 sense.
	MinGammaRatio float64
}

// VerifyExhaustive checks every subset of the left part of size in
// [1, maxSize] and returns the worst expansion found. It is exponential
// in u and intended for small universes only (u ≤ ~24); it panics if the
// enumeration would exceed roughly 2^28 subsets.
func VerifyExhaustive(g Graph, maxSize int) Report {
	u := g.LeftSize()
	if u > 28 {
		panic("expander: VerifyExhaustive is only for tiny universes")
	}
	rep := Report{MinGammaRatio: math.Inf(1)}
	n := int(u)
	var s []uint64
	var rec func(start, remaining int)
	rec = func(start, remaining int) {
		if len(s) > 0 {
			examine(g, s, &rep)
		}
		if remaining == 0 {
			return
		}
		for i := start; i < n; i++ {
			s = append(s, uint64(i))
			rec(i+1, remaining-1)
			s = s[:len(s)-1]
		}
	}
	rec(0, maxSize)
	return rep
}

func examine(g Graph, s []uint64, rep *Report) {
	rep.SetsChecked++
	gamma := NeighborhoodSize(g, s)
	eps := 1 - float64(gamma)/float64(g.Degree()*len(s))
	if eps > rep.WorstEpsilon {
		rep.WorstEpsilon = eps
		rep.WorstSetSize = len(s)
	}
	bound := g.Degree() * len(s)
	if v := g.RightSize(); bound > v {
		bound = v
	}
	ratio := float64(gamma) / float64(bound)
	if ratio < rep.MinGammaRatio {
		rep.MinGammaRatio = ratio
	}
}

// EstimateExpansion samples trials random subsets of each size in sizes
// (drawn without replacement from [0, u) via the seeded rng) and returns
// the worst expansion observed. It is a statistical audit suitable for
// the large universes the dictionaries actually use.
func EstimateExpansion(g Graph, sizes []int, trials int, seed int64) Report {
	return EstimateExpansionRNG(g, sizes, trials, rand.New(rand.NewSource(seed)))
}

// EstimateExpansionRNG is EstimateExpansion drawing from a
// caller-threaded source, so a composite experiment can run several
// audits off one seeded stream instead of inventing correlated seeds.
func EstimateExpansionRNG(g Graph, sizes []int, trials int, rng *rand.Rand) Report {
	rep := Report{MinGammaRatio: math.Inf(1)}
	for _, n := range sizes {
		for t := 0; t < trials; t++ {
			s := SampleSet(g.LeftSize(), n, rng)
			examine(g, s, &rep)
		}
	}
	return rep
}

// SampleSet draws n distinct left vertices uniformly from [0, u).
func SampleSet(u uint64, n int, rng *rand.Rand) []uint64 {
	if uint64(n) > u {
		panic("expander: sample larger than universe")
	}
	seen := make(map[uint64]struct{}, n)
	s := make([]uint64, 0, n)
	for len(s) < n {
		x := rng.Uint64() % u
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		s = append(s, x)
	}
	return s
}

// CommonNeighbors returns |Γ(x) ∩ Γ(y)|, the number of right vertices
// the two keys share.
func CommonNeighbors(g Graph, x, y uint64) int {
	nx := NeighborSet(g, x)
	ny := NeighborSet(g, y)
	set := make(map[int]struct{}, len(nx))
	for _, v := range nx {
		set[v] = struct{}{}
	}
	common := 0
	for _, v := range ny {
		if _, ok := set[v]; ok {
			common++
		}
	}
	return common
}

// MaxPairwiseCommon samples random key pairs and returns the largest
// common-neighbor count observed. The Theorem 6(b) majority decoding is
// sound precisely because "no two keys from U can have more than εd
// common neighbors" — with ε < 1/2, a stored key's ⌈2d/3⌉ fields always
// outvote any impostor. This audit measures that margin.
func MaxPairwiseCommon(g Graph, pairs int, seed int64) int {
	return MaxPairwiseCommonRNG(g, pairs, rand.New(rand.NewSource(seed)))
}

// MaxPairwiseCommonRNG is MaxPairwiseCommon drawing from a
// caller-threaded source.
func MaxPairwiseCommonRNG(g Graph, pairs int, rng *rand.Rand) int {
	max := 0
	u := g.LeftSize()
	for i := 0; i < pairs; i++ {
		x := rng.Uint64() % u
		y := rng.Uint64() % u
		if x == y {
			continue
		}
		if c := CommonNeighbors(g, x, y); c > max {
			max = c
		}
	}
	return max
}

// CheckStriped verifies structurally that g honours the striping
// contract: for every probed vertex, neighbor i lies in stripe i and
// matches StripeNeighbor. It probes the given vertices and returns the
// first violation, or ok.
func CheckStriped(g Striped, probe []uint64) (ok bool, bad uint64) {
	d := g.Degree()
	ss := g.StripeSize()
	buf := make([]int, 0, d)
	for _, x := range probe {
		buf = g.Neighbors(x, buf[:0])
		if len(buf) != d {
			return false, x
		}
		for i, y := range buf {
			if y/ss != i || y%ss != g.StripeNeighbor(x, i) {
				return false, x
			}
		}
	}
	return true, 0
}

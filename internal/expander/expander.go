// Package expander provides the bipartite expander graphs that every
// dictionary in the paper is built on, together with machinery for
// verifying their expansion properties.
//
// A bipartite, left-d-regular graph G = (U, V, E) is a (d, ε, δ)-expander
// if any set S ⊆ U has at least min((1−ε)d|S|, (1−δ)|V|) neighbors
// (Definition 1), and an (N, ε)-expander if any set of at most N left
// vertices has at least (1−ε)d|S| neighbors (Definition 2).
//
// The paper assumes free access to optimal expanders with degree
// d = O(log u), whose existence is known probabilistically but for which
// no explicit construction exists. Following the paper's own Open
// Problems section ("It seems possible that practical and truly simple
// constructions could exist, e.g., a subset of d functions from some
// efficient family of hash functions"), this package realizes graphs as a
// family of d seeded mixing functions. The construction is deterministic
// given its seed, and — crucially — the expansion property is *verified*
// (exhaustively for small universes, by sampling for large ones) rather
// than assumed; see verify.go. Section 5's semi-explicit telescope
// construction lives in the sibling package internal/explicit.
package expander

import "fmt"

// Graph is a bipartite left-d-regular graph. Left vertices are the keys
// of a universe [0, LeftSize); right vertices are indices in
// [0, RightSize).
type Graph interface {
	// LeftSize returns u, the size of the left part (the key universe).
	LeftSize() uint64
	// RightSize returns v, the size of the right part.
	RightSize() int
	// Degree returns d, the number of neighbors of every left vertex.
	Degree() int
	// Neighbors appends the d neighbors of x to dst and returns the
	// extended slice. Implementations must be deterministic and free of
	// I/O: the paper requires neighbor evaluation to use internal memory
	// only.
	Neighbors(x uint64, dst []int) []int
}

// Striped is a graph whose right part is partitioned into d stripes of
// equal size such that every left vertex has exactly one neighbor in each
// stripe. Striped graphs are what the parallel disk model needs: stripe i
// is stored on disk i, so the d blocks holding Γ(x) can be fetched in a
// single parallel I/O.
type Striped interface {
	Graph
	// StripeSize returns RightSize() / Degree().
	StripeSize() int
	// StripeNeighbor returns the index within stripe i (in
	// [0, StripeSize)) of x's unique neighbor in that stripe. The global
	// right-vertex index is i*StripeSize() + StripeNeighbor(x, i).
	StripeNeighbor(x uint64, i int) int
}

// mix64 is the SplitMix64 finalizer: a fast, high-quality 64-bit mixing
// permutation. It is the entire "hash family" behind Family.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Family is a striped, left-d-regular bipartite graph realized by d
// seeded mixing functions: the neighbor of x in stripe i is
// mix(seed, i, x) mod stripeSize. It is the deterministic stand-in for
// the optimal expanders the paper assumes (see the package comment).
type Family struct {
	u          uint64
	d          int
	stripeSize int
	seed       uint64
}

// NewFamily returns a striped graph with left part [0, u), degree d, and
// right part of size d*stripeSize (one stripe per disk). The same
// (u, d, stripeSize, seed) always yields the same graph.
func NewFamily(u uint64, d, stripeSize int, seed uint64) *Family {
	if u == 0 {
		panic("expander: empty universe")
	}
	if d <= 0 || stripeSize <= 0 {
		panic(fmt.Sprintf("expander: invalid degree %d or stripe size %d", d, stripeSize))
	}
	return &Family{u: u, d: d, stripeSize: stripeSize, seed: seed}
}

// LeftSize returns the universe size u.
func (f *Family) LeftSize() uint64 { return f.u }

// RightSize returns v = d * stripeSize.
func (f *Family) RightSize() int { return f.d * f.stripeSize }

// Degree returns the left degree d.
func (f *Family) Degree() int { return f.d }

// StripeSize returns the number of right vertices per stripe.
func (f *Family) StripeSize() int { return f.stripeSize }

// StripeNeighbor returns x's neighbor within stripe i.
func (f *Family) StripeNeighbor(x uint64, i int) int {
	h := mix64(f.seed ^ mix64(uint64(i)+1) ^ mix64(x))
	return int(h % uint64(f.stripeSize))
}

// Neighbors appends the d global neighbor indices of x to dst.
func (f *Family) Neighbors(x uint64, dst []int) []int {
	for i := 0; i < f.d; i++ {
		dst = append(dst, i*f.stripeSize+f.StripeNeighbor(x, i))
	}
	return dst
}

// NeighborSet returns the neighbors of x as a fresh slice. It is a
// convenience wrapper over Neighbors.
func NeighborSet(g Graph, x uint64) []int {
	return g.Neighbors(x, make([]int, 0, g.Degree()))
}

// Unstriped is a plain (non-striped) left-d-regular graph over a single
// unpartitioned right part, realized by the same seeded mixing family.
// Duplicate draws are re-mapped deterministically by linear probing so
// that every left vertex has d distinct neighbors, mirroring the paper's
// "appropriate re-mapping of possible multi-edges" (Lemma 10). It is used
// by the striping ablation (DESIGN.md A1): Section 5 notes explicit
// constructions are not striped and must either run in the disk-head
// model or be striped trivially at a factor-d space cost.
type Unstriped struct {
	u    uint64
	d    int
	v    int
	seed uint64
}

// NewUnstriped returns an unstriped graph with right part of size v.
// It requires v >= d so that d distinct neighbors exist.
func NewUnstriped(u uint64, d, v int, seed uint64) *Unstriped {
	if d <= 0 || v < d {
		panic(fmt.Sprintf("expander: need v >= d > 0, got d=%d v=%d", d, v))
	}
	return &Unstriped{u: u, d: d, v: v, seed: seed}
}

// LeftSize returns the universe size u.
func (g *Unstriped) LeftSize() uint64 { return g.u }

// RightSize returns v.
func (g *Unstriped) RightSize() int { return g.v }

// Degree returns the left degree d.
func (g *Unstriped) Degree() int { return g.d }

// Neighbors appends the d distinct neighbors of x to dst.
func (g *Unstriped) Neighbors(x uint64, dst []int) []int {
	seen := make(map[int]bool, g.d)
	for i := 0; len(seen) < g.d; i++ {
		h := int(mix64(g.seed^mix64(uint64(i)+1)^mix64(x)) % uint64(g.v))
		for seen[h] { // deterministic re-map of multi-edges
			h = (h + 1) % g.v
		}
		seen[h] = true
		dst = append(dst, h)
	}
	return dst
}

// Table is a graph backed by an explicit adjacency table. It is the
// representation produced by probabilistic search in internal/explicit
// (Theorem 9's "found probabilistically" option) and is also handy in
// tests for hand-built graphs.
type Table struct {
	V   int
	Adj [][]int // Adj[x] lists the d neighbors of left vertex x
}

// LeftSize returns the number of rows of the table.
func (t *Table) LeftSize() uint64 { return uint64(len(t.Adj)) }

// RightSize returns v.
func (t *Table) RightSize() int { return t.V }

// Degree returns the common length of the adjacency rows.
func (t *Table) Degree() int {
	if len(t.Adj) == 0 {
		return 0
	}
	return len(t.Adj[0])
}

// Neighbors appends the stored neighbors of x to dst.
func (t *Table) Neighbors(x uint64, dst []int) []int {
	return append(dst, t.Adj[x]...)
}

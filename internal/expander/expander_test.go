package expander

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFamilyBasics(t *testing.T) {
	g := NewFamily(1<<20, 8, 128, 42)
	if g.LeftSize() != 1<<20 {
		t.Errorf("LeftSize = %d", g.LeftSize())
	}
	if g.Degree() != 8 {
		t.Errorf("Degree = %d", g.Degree())
	}
	if g.RightSize() != 8*128 {
		t.Errorf("RightSize = %d", g.RightSize())
	}
	if g.StripeSize() != 128 {
		t.Errorf("StripeSize = %d", g.StripeSize())
	}
}

func TestFamilyDeterministic(t *testing.T) {
	a := NewFamily(1<<30, 6, 64, 7)
	b := NewFamily(1<<30, 6, 64, 7)
	for x := uint64(0); x < 200; x++ {
		na := NeighborSet(a, x)
		nb := NeighborSet(b, x)
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("same seed, different neighbors for x=%d", x)
			}
		}
	}
}

func TestFamilySeedMatters(t *testing.T) {
	a := NewFamily(1<<30, 6, 1024, 1)
	b := NewFamily(1<<30, 6, 1024, 2)
	same := 0
	for x := uint64(0); x < 100; x++ {
		na, nb := NeighborSet(a, x), NeighborSet(b, x)
		for i := range na {
			if na[i] == nb[i] {
				same++
			}
		}
	}
	// 600 draws from stripes of size 1024: expect ~0.6 accidental matches.
	if same > 30 {
		t.Errorf("different seeds agree on %d/600 neighbors; family ignores seed?", same)
	}
}

func TestFamilyStripingContract(t *testing.T) {
	g := NewFamily(1<<40, 10, 333, 99)
	probe := make([]uint64, 500)
	rng := rand.New(rand.NewSource(5))
	for i := range probe {
		probe[i] = rng.Uint64() % g.LeftSize()
	}
	if ok, bad := CheckStriped(g, probe); !ok {
		t.Errorf("striping contract violated at x=%d", bad)
	}
}

func TestFamilyPanicsOnBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { NewFamily(0, 4, 16, 0) },
		func() { NewFamily(10, 0, 16, 0) },
		func() { NewFamily(10, 4, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad NewFamily params did not panic")
				}
			}()
			f()
		}()
	}
}

func TestUnstripedDistinctNeighbors(t *testing.T) {
	g := NewUnstriped(1<<20, 8, 64, 3)
	for x := uint64(0); x < 300; x++ {
		ns := NeighborSet(g, x)
		if len(ns) != 8 {
			t.Fatalf("x=%d has %d neighbors, want 8", x, len(ns))
		}
		seen := map[int]bool{}
		for _, y := range ns {
			if y < 0 || y >= 64 {
				t.Fatalf("x=%d neighbor %d out of range", x, y)
			}
			if seen[y] {
				t.Fatalf("x=%d has duplicate neighbor %d", x, y)
			}
			seen[y] = true
		}
	}
}

func TestUnstripedTinyRightSide(t *testing.T) {
	// v == d forces every vertex to be adjacent to the whole right side.
	g := NewUnstriped(100, 4, 4, 1)
	ns := NeighborSet(g, 17)
	seen := map[int]bool{}
	for _, y := range ns {
		seen[y] = true
	}
	if len(seen) != 4 {
		t.Errorf("v==d: got %d distinct neighbors, want 4", len(seen))
	}
}

func TestTableGraph(t *testing.T) {
	tab := &Table{V: 5, Adj: [][]int{{0, 1}, {1, 2}, {3, 4}}}
	if tab.LeftSize() != 3 || tab.Degree() != 2 || tab.RightSize() != 5 {
		t.Errorf("table dims wrong: u=%d d=%d v=%d", tab.LeftSize(), tab.Degree(), tab.RightSize())
	}
	ns := NeighborSet(tab, 2)
	if ns[0] != 3 || ns[1] != 4 {
		t.Errorf("Neighbors(2) = %v", ns)
	}
	empty := &Table{V: 1}
	if empty.Degree() != 0 {
		t.Errorf("empty table degree = %d", empty.Degree())
	}
}

func TestNeighborhoodSize(t *testing.T) {
	// Two vertices sharing one neighbor: |Γ| = 3.
	tab := &Table{V: 4, Adj: [][]int{{0, 1}, {1, 2}}}
	if got := NeighborhoodSize(tab, []uint64{0, 1}); got != 3 {
		t.Errorf("NeighborhoodSize = %d, want 3", got)
	}
}

func TestEpsilonOf(t *testing.T) {
	tab := &Table{V: 4, Adj: [][]int{{0, 1}, {1, 2}}}
	// d|S| = 4, Γ = 3 → ε = 1/4.
	if got := EpsilonOf(tab, []uint64{0, 1}); got != 0.25 {
		t.Errorf("EpsilonOf = %v, want 0.25", got)
	}
	if got := EpsilonOf(tab, nil); got != 0 {
		t.Errorf("EpsilonOf(empty) = %v, want 0", got)
	}
}

func TestUniqueNeighbors(t *testing.T) {
	// Vertex 0: {0,1}; vertex 1: {1,2}. Unique: 0 (owner 0), 2 (owner 1).
	tab := &Table{V: 4, Adj: [][]int{{0, 1}, {1, 2}}}
	phi := UniqueNeighbors(tab, []uint64{0, 1})
	if len(phi) != 2 {
		t.Fatalf("|Φ| = %d, want 2", len(phi))
	}
	if phi[0] != 0 || phi[2] != 1 {
		t.Errorf("Φ owners wrong: %v", phi)
	}
}

func TestUniqueNeighborStats(t *testing.T) {
	tab := &Table{V: 4, Adj: [][]int{{0, 1}, {1, 2}}}
	st := UniqueNeighborStats(tab, []uint64{0, 1}, 0.5)
	// threshold = ceil(0.5*2) = 1 unique neighbor; both qualify.
	if st.Phi != 2 || st.WellCovered != 2 {
		t.Errorf("stats = %+v, want Phi=2 WellCovered=2", st)
	}
	if st.PerVertex[0] != 1 || st.PerVertex[1] != 1 {
		t.Errorf("PerVertex = %v, want [1 1]", st.PerVertex)
	}
}

func TestLemma4OnFamily(t *testing.T) {
	// Lemma 4: |Φ(S)| ≥ (1−2ε)d|S|. Measure ε on the same set and check
	// the implication holds exactly (it is a theorem about any graph).
	g := NewFamily(1<<32, 8, 2048, 11)
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10, 100, 500} {
		s := SampleSet(g.LeftSize(), n, rng)
		eps := EpsilonOf(g, s)
		st := UniqueNeighborStats(g, s, 1.0/3)
		bound := (1 - 2*eps) * float64(g.Degree()*n)
		if float64(st.Phi) < bound-1e-9 {
			t.Errorf("n=%d: Φ=%d below Lemma 4 bound %.2f (ε=%.4f)", n, st.Phi, bound, eps)
		}
	}
}

func TestLemma5OnFamily(t *testing.T) {
	// Lemma 5: |S′| ≥ (1 − 2ε/λ)|S|.
	g := NewFamily(1<<32, 12, 4096, 13)
	rng := rand.New(rand.NewSource(2))
	lambda := 1.0 / 3
	for _, n := range []int{50, 400} {
		s := SampleSet(g.LeftSize(), n, rng)
		eps := EpsilonOf(g, s)
		st := UniqueNeighborStats(g, s, lambda)
		bound := (1 - 2*eps/lambda) * float64(n)
		if float64(st.WellCovered) < bound-1e-9 {
			t.Errorf("n=%d: |S′|=%d below Lemma 5 bound %.2f (ε=%.4f)", n, st.WellCovered, bound, eps)
		}
	}
}

func TestVerifyExhaustiveTinyGraph(t *testing.T) {
	// Complete-ish bipartite graph on a tiny universe: perfect expansion
	// for singletons.
	g := NewFamily(8, 3, 16, 21)
	rep := VerifyExhaustive(g, 2)
	if rep.SetsChecked != 8+28 {
		t.Errorf("SetsChecked = %d, want 36", rep.SetsChecked)
	}
	if rep.WorstEpsilon < 0 || rep.WorstEpsilon > 1 {
		t.Errorf("WorstEpsilon = %v out of [0,1]", rep.WorstEpsilon)
	}
}

func TestVerifyExhaustivePanicsOnLargeUniverse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VerifyExhaustive on u=2^20 did not panic")
		}
	}()
	VerifyExhaustive(NewFamily(1<<20, 3, 16, 0), 2)
}

func TestEstimateExpansionFamilyIsGood(t *testing.T) {
	// The working regime of the dictionaries: d = 12, stripes sized so
	// that v ≈ 4nd. Sampled sets must expand well (ε comfortably < 1/6,
	// the Theorem 6 requirement region for ε = 1/12..1/6).
	g := NewFamily(1<<40, 12, 1<<12, 777)
	rep := EstimateExpansion(g, []int{16, 64, 256}, 30, 9)
	if rep.WorstEpsilon > 1.0/6 {
		t.Errorf("sampled worst ε = %.4f, want ≤ 1/6 in the working regime", rep.WorstEpsilon)
	}
	if rep.SetsChecked != 90 {
		t.Errorf("SetsChecked = %d, want 90", rep.SetsChecked)
	}
}

func TestCommonNeighbors(t *testing.T) {
	// Hand-built: x→{0,1,2}, y→{1,2,3} share {1,2}.
	tab := &Table{V: 4, Adj: [][]int{{0, 1, 2}, {1, 2, 3}}}
	if got := CommonNeighbors(tab, 0, 1); got != 2 {
		t.Errorf("CommonNeighbors = %d, want 2", got)
	}
	if got := CommonNeighbors(tab, 0, 0); got != 3 {
		t.Errorf("self common = %d, want 3", got)
	}
}

func TestMaxPairwiseCommonStaysBelowMajority(t *testing.T) {
	// The Theorem 6(b) soundness margin: in the dictionary's working
	// regime, sampled pairs share far fewer than d/2 neighbors.
	g := NewFamily(1<<40, 12, 6*4096, 99)
	max := MaxPairwiseCommon(g, 3000, 7)
	if max >= g.Degree()/2 {
		t.Errorf("max common neighbors = %d of d=%d; majority decoding unsafe", max, g.Degree())
	}
}

func TestSampleSetDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := SampleSet(1000, 100, rng)
	seen := map[uint64]bool{}
	for _, x := range s {
		if x >= 1000 {
			t.Fatalf("sample %d out of range", x)
		}
		if seen[x] {
			t.Fatalf("duplicate sample %d", x)
		}
		seen[x] = true
	}
}

func TestSampleSetPanicsWhenTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized sample did not panic")
		}
	}()
	SampleSet(5, 6, rand.New(rand.NewSource(0)))
}

// Property: Φ(S) owners are always members of S and every unique node is
// counted once per owner in PerVertex.
func TestPropertyPhiConsistency(t *testing.T) {
	g := NewFamily(1<<16, 6, 512, 5)
	f := func(raw []uint16) bool {
		seen := map[uint64]bool{}
		var s []uint64
		for _, r := range raw {
			x := uint64(r)
			if !seen[x] {
				seen[x] = true
				s = append(s, x)
			}
			if len(s) == 40 {
				break
			}
		}
		if len(s) == 0 {
			return true
		}
		st := UniqueNeighborStats(g, s, 0.5)
		sum := 0
		for _, c := range st.PerVertex {
			sum += c
		}
		return sum == st.Phi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: expansion never exceeds the trivial bounds
// 1 ≤ |Γ(S)| ≤ min(d|S|, v).
func TestPropertyGammaBounds(t *testing.T) {
	g := NewFamily(1<<16, 5, 64, 8)
	f := func(raw []uint16) bool {
		seen := map[uint64]bool{}
		var s []uint64
		for _, r := range raw {
			if !seen[uint64(r)] {
				seen[uint64(r)] = true
				s = append(s, uint64(r))
			}
		}
		if len(s) == 0 {
			return true
		}
		gamma := NeighborhoodSize(g, s)
		hi := g.Degree() * len(s)
		if v := g.RightSize(); hi > v {
			hi = v
		}
		return gamma >= 1 && gamma <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

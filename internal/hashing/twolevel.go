package hashing

import (
	"fmt"

	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// TwoLevelConfig parameterizes the "[7] + trick" structure.
type TwoLevelConfig struct {
	// Capacity is the maximum number of keys. Required.
	Capacity int
	// SatWords is the satellite size per key, in words (bandwidth is the
	// full stripe: up to B·D minus headers).
	SatWords int
	// Alpha oversizes the primary array: (1+Alpha)·Capacity cells. The
	// fraction of keys pushed to the secondary dictionary — and hence
	// the ɛ in the 1+ɛ average — is about 1/(1+Alpha) per the birthday
	// estimate. 0 defaults to 4.
	Alpha float64
	// Independence is the hash family's k; 0 defaults to 2⌈log₂ n⌉.
	Independence int
	// Seed draws the hash functions.
	Seed uint64
}

// TwoLevel is the folklore structure the paper's Section 1.1 describes:
// a primary hash table keeping every key that does not collide, with
// collision-marked cells, backed by a [7]-style secondary dictionary for
// the colliding minority. Searches and updates cost 1+ɛ and 2+ɛ I/Os on
// average (with high probability over the hash functions), with full
// stripe bandwidth.
type TwoLevel struct {
	m         *pdm.Machine
	cfg       TwoLevelConfig
	h         *Poly
	primary   int // number of primary cells
	cellsPerS int // cells per stripe
	secondary *Table
	n         int

	// Demoted counts keys currently living in the secondary structure.
	Demoted int
}

// Cell layout within a stripe: cells of (2+SatWords) words, word0 being
// 0 = empty, 1 = occupied, 2 = collision marker, word1 the key.
const (
	cellEmpty  = 0
	cellTaken  = 1
	cellMarked = 2
)

// NewTwoLevel creates an empty structure on m. The secondary dictionary
// shares the machine, in stripes beyond the primary array.
func NewTwoLevel(m *pdm.Machine, cfg TwoLevelConfig) (*TwoLevel, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("hashing: Capacity %d must be positive", cfg.Capacity)
	}
	if cfg.SatWords < 0 {
		return nil, fmt.Errorf("hashing: negative SatWords")
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 4
	}
	if cfg.Alpha <= 0 {
		return nil, fmt.Errorf("hashing: Alpha %v must be positive", cfg.Alpha)
	}
	if cfg.Independence == 0 {
		cfg.Independence = 2 * log2ceil(cfg.Capacity)
	}
	cellWords := 2 + cfg.SatWords
	sw := m.D() * m.B()
	cellsPerS := sw / cellWords
	if cellsPerS < 1 {
		return nil, fmt.Errorf("hashing: cell of %d words does not fit a stripe of %d", cellWords, sw)
	}
	primary := int(float64(cfg.Capacity) * (1 + cfg.Alpha))
	tl := &TwoLevel{
		m:         m,
		cfg:       cfg,
		h:         NewPoly(cfg.Independence, cfg.Seed),
		primary:   primary,
		cellsPerS: cellsPerS,
	}
	primaryStripes := ceilDiv(primary, cellsPerS)
	sec, err := newTableAt(m, primaryStripes, TableConfig{
		Capacity: cfg.Capacity,
		SatWords: cfg.SatWords,
		Seed:     cfg.Seed + 0xb5297a4d2f769bd7,
	})
	if err != nil {
		return nil, err
	}
	tl.secondary = sec
	return tl, nil
}

// Len returns the number of keys stored.
func (tl *TwoLevel) Len() int { return tl.n }

// cellOf returns x's cell index, its stripe, and the word offset inside
// the stripe.
func (tl *TwoLevel) cellOf(x pdm.Word) (stripe, off int) {
	cell := tl.h.Range(uint64(x), tl.primary)
	return cell / tl.cellsPerS, (cell % tl.cellsPerS) * (2 + tl.cfg.SatWords)
}

// Lookup returns a copy of x's satellite and whether x is present.
// Cost: one parallel I/O for the primary cell; one more only when the
// cell carries a collision marker.
func (tl *TwoLevel) Lookup(x pdm.Word) ([]pdm.Word, bool) {
	defer tl.m.Span(obs.TagLookup)()
	stripe, off := tl.cellOf(x)
	data := tl.m.ReadStripe(stripe)
	cell := data[off : off+2+tl.cfg.SatWords]
	switch cell[0] {
	case cellTaken:
		if cell[1] == x {
			out := make([]pdm.Word, tl.cfg.SatWords)
			copy(out, cell[2:])
			return out, true
		}
		return nil, false
	case cellMarked:
		return tl.secondary.Lookup(x)
	default:
		return nil, false
	}
}

// Contains reports presence at Lookup cost.
func (tl *TwoLevel) Contains(x pdm.Word) bool {
	_, ok := tl.Lookup(x)
	return ok
}

// Insert stores (x, sat). A fresh key landing on an occupied cell marks
// the cell and demotes both occupants to the secondary dictionary.
func (tl *TwoLevel) Insert(x pdm.Word, sat []pdm.Word) error {
	if len(sat) != tl.cfg.SatWords {
		return fmt.Errorf("hashing: satellite of %d words, config says %d", len(sat), tl.cfg.SatWords)
	}
	defer tl.m.Span(obs.TagInsert)()
	stripe, off := tl.cellOf(x)
	data := tl.m.ReadStripe(stripe)
	cell := data[off : off+2+tl.cfg.SatWords]
	switch {
	case cell[0] == cellEmpty:
		cell[0] = cellTaken
		cell[1] = x
		copy(cell[2:], sat)
		tl.m.WriteStripe(stripe, data)
		tl.n++
	case cell[0] == cellTaken && cell[1] == x:
		copy(cell[2:], sat)
		tl.m.WriteStripe(stripe, data)
	case cell[0] == cellTaken:
		// Collision: demote the occupant, mark the cell, and send the
		// new key to the secondary as well.
		occupantKey := cell[1]
		occupantSat := append([]pdm.Word(nil), cell[2:]...)
		if err := tl.secondary.Insert(occupantKey, occupantSat); err != nil {
			return err
		}
		if err := tl.secondary.Insert(x, sat); err != nil {
			return err
		}
		cell[0] = cellMarked
		cell[1] = 0
		for i := range cell[2:] {
			cell[2+i] = 0
		}
		tl.m.WriteStripe(stripe, data)
		tl.Demoted += 2
		tl.n++
	default: // marked
		if !tl.secondary.Contains(x) {
			tl.n++
			tl.Demoted++
		}
		if err := tl.secondary.Insert(x, sat); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes x and reports whether it was present. Collision marks
// are left in place (the cell stays routed to the secondary), matching
// the structure's no-unmarking description in the paper.
func (tl *TwoLevel) Delete(x pdm.Word) bool {
	defer tl.m.Span(obs.TagDelete)()
	stripe, off := tl.cellOf(x)
	data := tl.m.ReadStripe(stripe)
	cell := data[off : off+2+tl.cfg.SatWords]
	switch {
	case cell[0] == cellTaken && cell[1] == x:
		for i := range cell {
			cell[i] = 0
		}
		tl.m.WriteStripe(stripe, data)
		tl.n--
		return true
	case cell[0] == cellMarked:
		if tl.secondary.Delete(x) {
			tl.n--
			tl.Demoted--
			return true
		}
	}
	return false
}

// newTableAt builds a Table whose stripes start at the given offset,
// letting it share a machine with the primary array.
func newTableAt(m *pdm.Machine, stripeOffset int, cfg TableConfig) (*Table, error) {
	t, err := NewTable(m, cfg)
	if err != nil {
		return nil, err
	}
	t.stripe0 = stripeOffset
	t.nextOv += stripeOffset
	return t, nil
}

// Package hashing implements the randomized baselines that Figure 1 of
// the paper compares the deterministic dictionaries against:
//
//   - Table — a bucketed hash table on striped blocks with overflow
//     chaining. With Θ(log n)-capacity buckets it is the stand-in for
//     the dictionary of Dietzfelbinger et al. [7] (O(1) I/Os with high
//     probability, linear worst case); with stripe-sized buckets and a
//     suitable constant it is the "Hashing, 1 whp / 2 whp, no overflow"
//     row (B·D = Ω(log n)).
//   - Cuckoo — cuckoo hashing [13] in the parallel disk model: 1-I/O
//     lookups with bandwidth B·D/2, amortized expected constant updates.
//   - TwoLevel — the "folklore trick" layered over [7]: a primary array
//     of single-record cells plus a secondary dictionary for colliding
//     keys, giving 1+ɛ average lookups with bandwidth O(B·D).
//
// All hash functions are O(log n)-wise independent polynomials over the
// Mersenne prime 2^61−1, the explicit family the paper's Section 1.1
// assumes fits in internal memory.
package hashing

import (
	"fmt"
	"math/bits"
)

// mersenne61 is the prime 2^61 − 1.
const mersenne61 = (1 << 61) - 1

// mulmod61 returns a·b mod 2^61−1 for a, b < 2^61−1.
func mulmod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// 2^64 ≡ 8 (mod 2^61−1), so a·b ≡ hi·8 + lo, with lo folded once.
	r := (lo & mersenne61) + (lo >> 61) + hi*8
	r = (r & mersenne61) + (r >> 61)
	if r >= mersenne61 {
		r -= mersenne61
	}
	return r
}

// Poly is a k-wise independent hash function: a random degree-(k−1)
// polynomial over GF(2^61−1).
type Poly struct {
	coeffs []uint64
}

// NewPoly returns a k-wise independent function drawn deterministically
// from the seed (a seeded SplitMix64 stream supplies the coefficients).
func NewPoly(k int, seed uint64) *Poly {
	if k < 1 {
		panic(fmt.Sprintf("hashing: independence %d below 1", k))
	}
	coeffs := make([]uint64, k)
	s := seed
	for i := range coeffs {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		coeffs[i] = (z ^ (z >> 31)) % mersenne61
	}
	return &Poly{coeffs: coeffs}
}

// Independence returns k.
func (p *Poly) Independence() int { return len(p.coeffs) }

// Hash evaluates the polynomial at x (reduced into the field first) by
// Horner's rule, returning a value in [0, 2^61−1).
func (p *Poly) Hash(x uint64) uint64 {
	x %= mersenne61
	var acc uint64
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		acc = mulmod61(acc, x)
		acc += p.coeffs[i]
		if acc >= mersenne61 {
			acc -= mersenne61
		}
	}
	return acc
}

// Range maps x to [0, m).
func (p *Poly) Range(x uint64, m int) int {
	if m <= 0 {
		panic("hashing: non-positive range")
	}
	return int(p.Hash(x) % uint64(m))
}

package hashing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pdmdict/internal/pdm"
)

func TestMulmod61(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 5, 0},
		{1, 7, 7},
		{mersenne61 - 1, 2, mersenne61 - 2},
		{1 << 60, 2, 1}, // 2^61 ≡ 1
	}
	for _, c := range cases {
		if got := mulmod61(c.a, c.b); got != c.want {
			t.Errorf("mulmod61(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: mulmod61 agrees with big-integer arithmetic via a second
// formulation (repeated addition on small operands).
func TestPropertyMulmod61MatchesNaive(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := uint64(a), uint64(b)
		want := (x * y) % mersenne61 // fits: 32-bit × 32-bit
		return mulmod61(x, y) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolyDeterministicAndSeedSensitive(t *testing.T) {
	p1 := NewPoly(8, 1)
	p2 := NewPoly(8, 1)
	p3 := NewPoly(8, 2)
	same, diff := 0, 0
	for x := uint64(0); x < 200; x++ {
		if p1.Hash(x) != p2.Hash(x) {
			t.Fatal("same seed disagrees")
		}
		if p1.Hash(x) == p3.Hash(x) {
			same++
		} else {
			diff++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide on %d/200 values", same)
	}
	if p1.Independence() != 8 {
		t.Errorf("Independence = %d", p1.Independence())
	}
}

func TestPolyRangeIsUniformish(t *testing.T) {
	p := NewPoly(16, 42)
	counts := make([]int, 16)
	for x := uint64(0); x < 16000; x++ {
		counts[p.Range(x, 16)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("bucket %d has %d of 16000 (expect ~1000)", i, c)
		}
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestPolyPanics(t *testing.T) {
	mustPanic(t, "NewPoly(0)", func() { NewPoly(0, 1) })
	p := NewPoly(2, 1)
	mustPanic(t, "Range(_, 0)", func() { p.Range(5, 0) })
}

func newMachine(d, b int) *pdm.Machine {
	return pdm.NewMachine(pdm.Config{D: d, B: b})
}

func TestTableBasicOps(t *testing.T) {
	m := newMachine(8, 16)
	tab, err := NewTable(m, TableConfig{Capacity: 200, SatWords: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(5, []pdm.Word{50, 51}); err != nil {
		t.Fatal(err)
	}
	if sat, ok := tab.Lookup(5); !ok || sat[0] != 50 || sat[1] != 51 {
		t.Fatalf("Lookup = %v %v", sat, ok)
	}
	if err := tab.Insert(5, []pdm.Word{60, 61}); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d after update", tab.Len())
	}
	if sat, _ := tab.Lookup(5); sat[0] != 60 {
		t.Errorf("update did not stick")
	}
	if !tab.Delete(5) || tab.Delete(5) || tab.Contains(5) {
		t.Error("delete sequence wrong")
	}
}

func TestTableNoOverflowRegimeIsOneIO(t *testing.T) {
	m := newMachine(8, 64)
	tab, err := NewTable(m, TableConfig{Capacity: 500, SatWords: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	keys := make([]pdm.Word, 500)
	for i := range keys {
		keys[i] = pdm.Word(rng.Uint64() % (1 << 40))
		if err := tab.Insert(keys[i], []pdm.Word{1}); err != nil {
			t.Fatal(err)
		}
	}
	if tab.Overflows != 0 {
		t.Fatalf("random keys caused %d overflows in the whp regime", tab.Overflows)
	}
	for _, k := range keys[:50] {
		before := m.Stats()
		if !tab.Contains(k) {
			t.Fatal("key lost")
		}
		if d := m.Stats().Sub(before).ParallelIOs; d != 1 {
			t.Fatalf("lookup = %d I/Os, want 1 whp", d)
		}
	}
}

func TestTableOverflowChains(t *testing.T) {
	// Tiny table, many keys → chains must form and stay correct.
	m := newMachine(2, 8)
	tab, err := NewTable(m, TableConfig{Capacity: 8, Buckets: 1, SatWords: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := tab.Insert(pdm.Word(i+1), nil); err != nil {
			t.Fatal(err)
		}
	}
	if tab.Overflows == 0 {
		t.Fatal("expected overflow stripes")
	}
	for i := 0; i < 40; i++ {
		if !tab.Contains(pdm.Word(i + 1)) {
			t.Fatalf("key %d lost in chain", i+1)
		}
	}
	// Chained lookup must cost more than one I/O — the tail hashing
	// cannot avoid and the paper's structures do.
	before := m.Stats()
	tab.Contains(40)
	if d := m.Stats().Sub(before).ParallelIOs; d < 2 {
		t.Errorf("deep chain lookup = %d I/Os; expected > 1", d)
	}
	// Delete from the middle of a chain.
	if !tab.Delete(20) || tab.Contains(20) {
		t.Error("chain delete failed")
	}
}

func TestTableConfigErrors(t *testing.T) {
	m := newMachine(2, 2)
	if _, err := NewTable(m, TableConfig{Capacity: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewTable(m, TableConfig{Capacity: 5, SatWords: -1}); err == nil {
		t.Error("negative SatWords accepted")
	}
	if _, err := NewTable(m, TableConfig{Capacity: 5, SatWords: 10}); err == nil {
		t.Error("record larger than stripe accepted")
	}
	if _, err := NewTable(m, TableConfig{Capacity: 5, BucketStripes: -1}); err == nil {
		t.Error("negative BucketStripes accepted")
	}
}

func TestCuckooBasicOps(t *testing.T) {
	m := newMachine(8, 16)
	c, err := NewCuckoo(m, CuckooConfig{Capacity: 100, SatWords: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(9, []pdm.Word{90, 91, 92}); err != nil {
		t.Fatal(err)
	}
	if sat, ok := c.Lookup(9); !ok || sat[2] != 92 {
		t.Fatalf("Lookup = %v %v", sat, ok)
	}
	if err := c.Insert(9, []pdm.Word{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d after update", c.Len())
	}
	if !c.Delete(9) || c.Delete(9) || c.Contains(9) {
		t.Error("delete sequence wrong")
	}
}

func TestCuckooLookupIsOneIO(t *testing.T) {
	m := newMachine(8, 32)
	c, err := NewCuckoo(m, CuckooConfig{Capacity: 400, SatWords: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	keys := make([]pdm.Word, 400)
	for i := range keys {
		keys[i] = pdm.Word(rng.Uint64() % (1 << 40))
		if err := c.Insert(keys[i], []pdm.Word{pdm.Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		before := m.Stats()
		if _, ok := c.Lookup(k); !ok {
			t.Fatalf("key %d lost (evictions=%d rehashes=%d)", k, c.Evictions, c.Rehashes)
		}
		if d := m.Stats().Sub(before).ParallelIOs; d != 1 {
			t.Fatalf("cuckoo lookup = %d I/Os, want exactly 1", d)
		}
	}
	// Absent keys: also 1 I/O.
	before := m.Stats()
	c.Contains(1 << 50)
	if d := m.Stats().Sub(before).ParallelIOs; d != 1 {
		t.Errorf("absent lookup = %d I/Os", d)
	}
}

func TestCuckooHighLoadStillCorrect(t *testing.T) {
	m := newMachine(4, 16)
	c, err := NewCuckoo(m, CuckooConfig{Capacity: 300, SatWords: 0, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[pdm.Word]bool{}
	rng := rand.New(rand.NewSource(9))
	for len(oracle) < 300 {
		k := pdm.Word(rng.Uint64() % (1 << 32))
		if err := c.Insert(k, nil); err != nil {
			t.Fatalf("insert failed at %d keys: %v", len(oracle), err)
		}
		oracle[k] = true
	}
	for k := range oracle {
		if !c.Contains(k) {
			t.Fatalf("key %d lost (evictions=%d rehashes=%d)", k, c.Evictions, c.Rehashes)
		}
	}
	if c.Evictions == 0 {
		t.Error("expected some evictions at 90% per-table load")
	}
}

func TestCuckooCapacity(t *testing.T) {
	m := newMachine(4, 8)
	c, err := NewCuckoo(m, CuckooConfig{Capacity: 4, SatWords: 0, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Insert(pdm.Word(i*3+1), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Insert(99, nil); err != ErrCuckooFull {
		t.Errorf("over-capacity insert: %v", err)
	}
}

func TestCuckooRehashPath(t *testing.T) {
	// Force rehashes with a pathologically short eviction walk: the
	// structure must survive and stay correct.
	m := newMachine(4, 16)
	c, err := NewCuckoo(m, CuckooConfig{Capacity: 120, CellsPerTable: 130, MaxLoop: 2, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[pdm.Word]bool{}
	rng := rand.New(rand.NewSource(31))
	for len(oracle) < 120 {
		k := pdm.Word(rng.Uint64() % (1 << 32))
		if oracle[k] {
			continue
		}
		if err := c.Insert(k, nil); err != nil {
			t.Fatalf("insert with rehashing failed at %d keys: %v", len(oracle), err)
		}
		oracle[k] = true
	}
	if c.Rehashes == 0 {
		t.Error("MaxLoop=2 at 46% load triggered no rehash; test is vacuous")
	}
	for k := range oracle {
		if !c.Contains(k) {
			t.Fatalf("key %d lost across %d rehashes", k, c.Rehashes)
		}
	}
	if c.Len() != 120 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestTableAccessors(t *testing.T) {
	m := newMachine(4, 32)
	tab, err := NewTable(m, DGMConfig(100, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Buckets() < 1 {
		t.Errorf("Buckets = %d", tab.Buckets())
	}
	b := tab.BucketOf(42)
	if b < 0 || b >= tab.Buckets() {
		t.Errorf("BucketOf out of range: %d", b)
	}
	// BucketOf is consistent with where lookups go.
	tab.Insert(42, []pdm.Word{1})
	if !tab.Contains(42) {
		t.Error("key lost")
	}
	// clampCount handles negative casts.
	if got := tab.clampCount(-1); got != tab.recs {
		t.Errorf("clampCount(-1) = %d", got)
	}
}

func TestCuckooConfigErrors(t *testing.T) {
	if _, err := NewCuckoo(newMachine(3, 8), CuckooConfig{Capacity: 5}); err == nil {
		t.Error("odd disk count accepted")
	}
	if _, err := NewCuckoo(newMachine(4, 8), CuckooConfig{Capacity: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewCuckoo(newMachine(4, 2), CuckooConfig{Capacity: 5, SatWords: 10}); err == nil {
		t.Error("record larger than half-stripe accepted")
	}
}

func TestTwoLevelBasicOps(t *testing.T) {
	m := newMachine(8, 16)
	tl, err := NewTwoLevel(m, TwoLevelConfig{Capacity: 100, SatWords: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Insert(7, []pdm.Word{70, 71}); err != nil {
		t.Fatal(err)
	}
	if sat, ok := tl.Lookup(7); !ok || sat[1] != 71 {
		t.Fatalf("Lookup = %v %v", sat, ok)
	}
	if err := tl.Insert(7, []pdm.Word{80, 81}); err != nil {
		t.Fatal(err)
	}
	if tl.Len() != 1 {
		t.Errorf("Len = %d after update", tl.Len())
	}
	if !tl.Delete(7) || tl.Delete(7) || tl.Contains(7) {
		t.Error("delete sequence wrong")
	}
}

func TestTwoLevelAverageLookupNearOne(t *testing.T) {
	m := newMachine(8, 64)
	tl, err := NewTwoLevel(m, TwoLevelConfig{Capacity: 1000, SatWords: 1, Alpha: 4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	keys := make([]pdm.Word, 1000)
	for i := range keys {
		keys[i] = pdm.Word(rng.Uint64() % (1 << 44))
		if err := tl.Insert(keys[i], []pdm.Word{1}); err != nil {
			t.Fatal(err)
		}
	}
	before := m.Stats()
	for _, k := range keys {
		if !tl.Contains(k) {
			t.Fatal("key lost")
		}
	}
	avg := float64(m.Stats().Sub(before).ParallelIOs) / float64(len(keys))
	// Alpha=4 → expected demoted fraction ≈ 2·(1/5)·adjustments; the
	// average must sit well under 1.5.
	if avg > 1.5 {
		t.Errorf("average lookup = %.3f I/Os, want ≤ 1.5 with Alpha=4", avg)
	}
	if tl.Demoted == 0 {
		t.Log("no demotions at n=1000; acceptable but unusual")
	}
}

func TestTwoLevelCollisionsRouteToSecondary(t *testing.T) {
	// Force collisions with a tiny primary array.
	m := newMachine(4, 16)
	tl, err := NewTwoLevel(m, TwoLevelConfig{Capacity: 40, SatWords: 1, Alpha: 0.25, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[pdm.Word]pdm.Word{}
	for i := 0; i < 40; i++ {
		k := pdm.Word(i*97 + 5)
		v := pdm.Word(i)
		if err := tl.Insert(k, []pdm.Word{v}); err != nil {
			t.Fatal(err)
		}
		oracle[k] = v
	}
	if tl.Demoted == 0 {
		t.Fatal("expected collisions with a 1.25x primary array")
	}
	for k, v := range oracle {
		sat, ok := tl.Lookup(k)
		if !ok || sat[0] != v {
			t.Fatalf("key %d = %v %v, want %d", k, sat, ok, v)
		}
	}
	// Deletes across both levels.
	for k := range oracle {
		if !tl.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	if tl.Len() != 0 {
		t.Errorf("Len = %d after full deletion", tl.Len())
	}
}

func TestTwoLevelConfigErrors(t *testing.T) {
	m := newMachine(2, 2)
	if _, err := NewTwoLevel(m, TwoLevelConfig{Capacity: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewTwoLevel(m, TwoLevelConfig{Capacity: 5, Alpha: -1}); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := NewTwoLevel(m, TwoLevelConfig{Capacity: 5, SatWords: 10}); err == nil {
		t.Error("cell larger than stripe accepted")
	}
}

// Property: all three baselines agree with a map oracle.
func TestPropertyBaselinesMatchMap(t *testing.T) {
	type dict interface {
		Insert(pdm.Word, []pdm.Word) error
		Lookup(pdm.Word) ([]pdm.Word, bool)
		Delete(pdm.Word) bool
		Len() int
	}
	builders := []func() dict{
		func() dict {
			tab, _ := NewTable(newMachine(4, 32), TableConfig{Capacity: 100, SatWords: 1, Seed: 20})
			return tab
		},
		func() dict {
			c, _ := NewCuckoo(newMachine(4, 32), CuckooConfig{Capacity: 100, SatWords: 1, Seed: 21})
			return c
		},
		func() dict {
			tl, _ := NewTwoLevel(newMachine(4, 32), TwoLevelConfig{Capacity: 100, SatWords: 1, Seed: 22})
			return tl
		},
	}
	for bi, build := range builders {
		f := func(ops []uint32) bool {
			d := build()
			oracle := map[pdm.Word]pdm.Word{}
			for _, op := range ops {
				k := pdm.Word(op % 61)
				switch op % 3 {
				case 0:
					v := pdm.Word(op)
					if d.Insert(k, []pdm.Word{v}) == nil {
						oracle[k] = v
					}
				case 1:
					_, okOracle := oracle[k]
					if d.Delete(k) != okOracle {
						return false
					}
					delete(oracle, k)
				case 2:
					sat, ok := d.Lookup(k)
					v, okOracle := oracle[k]
					if ok != okOracle || (ok && sat[0] != v) {
						return false
					}
				}
			}
			return d.Len() == len(oracle)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("baseline %d: %v", bi, err)
		}
	}
}

package hashing

import (
	"fmt"

	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// TableConfig parameterizes the bucketed striped hash table.
type TableConfig struct {
	// Capacity is the expected maximum number of keys (used for sizing
	// only; the table accepts more via overflow chains). Required.
	Capacity int
	// SatWords is the satellite size per key, in words.
	SatWords int
	// Buckets is the number of buckets; 0 sizes the table so the average
	// bucket is half full.
	Buckets int
	// BucketStripes is the number of stripes per bucket; 0 defaults to 1
	// (the usual configuration: one bucket = one striped block of B·D
	// words).
	BucketStripes int
	// Independence is the hash family's k; 0 defaults to 2⌈log₂ n⌉,
	// the O(log n)-wise independence the paper's Section 1.1 assumes.
	Independence int
	// Seed draws the hash function.
	Seed uint64
}

// Table is a linear-space hash table over striped blocks: bucket i is
// BucketStripes logical stripes, holding records plus an overflow
// pointer. Lookups cost 1 parallel I/O per bucket stripe plus one per
// overflow stripe traversed; with sizing in the whp regime overflow
// never materializes on random keys — but an adversarial key set drives
// every operation down one long chain, which is exactly the worst case
// the paper's deterministic structures eliminate (experiment E7-tails).
type Table struct {
	m       *pdm.Machine
	cfg     TableConfig
	h       *Poly
	recs    int // records per stripe payload
	n       int
	stripe0 int // stripe offset, for machines shared with other structures
	nextOv  int // next free overflow stripe

	// stats
	Overflows int // overflow stripes allocated
}

// Stripe layout: word0 = record count, word1 = overflow stripe + 1 (0 =
// none), then records of (1+SatWords) words.

// NewTable creates an empty table on m.
func NewTable(m *pdm.Machine, cfg TableConfig) (*Table, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("hashing: Capacity %d must be positive", cfg.Capacity)
	}
	if cfg.SatWords < 0 {
		return nil, fmt.Errorf("hashing: negative SatWords")
	}
	if cfg.BucketStripes == 0 {
		cfg.BucketStripes = 1
	}
	if cfg.BucketStripes < 1 {
		return nil, fmt.Errorf("hashing: BucketStripes %d below 1", cfg.BucketStripes)
	}
	sw := m.D() * m.B()
	recs := (sw - 2) / (1 + cfg.SatWords)
	if recs < 1 {
		return nil, fmt.Errorf("hashing: record of %d words does not fit a stripe of %d", 1+cfg.SatWords, sw)
	}
	if cfg.Buckets == 0 {
		perBucket := recs * cfg.BucketStripes
		cfg.Buckets = ceilDiv(2*cfg.Capacity, perBucket)
	}
	if cfg.Independence == 0 {
		cfg.Independence = 2 * log2ceil(cfg.Capacity)
	}
	return &Table{
		m:      m,
		cfg:    cfg,
		h:      NewPoly(cfg.Independence, cfg.Seed),
		recs:   recs,
		nextOv: cfg.Buckets * cfg.BucketStripes,
	}, nil
}

// Len returns the number of keys stored.
func (t *Table) Len() int { return t.n }

// Buckets returns the bucket count.
func (t *Table) Buckets() int { return t.cfg.Buckets }

// clampCount bounds a stripe's record count by its capacity, so corrupt
// headers are read as full stripes instead of crashing scans.
func (t *Table) clampCount(count int) int {
	if count < 0 || count > t.recs {
		return t.recs
	}
	return count
}

// BucketOf returns the bucket index x hashes to. Experiment E7-tails
// uses it to brute-force colliding key sets (workload.CollidingKeys).
func (t *Table) BucketOf(x pdm.Word) int {
	return t.h.Range(uint64(x), t.cfg.Buckets)
}

// bucketStripe returns the first stripe of bucket i.
func (t *Table) bucketStripe(i int) int { return t.stripe0 + i*t.cfg.BucketStripes }

func (t *Table) recordAt(stripe []pdm.Word, i int) []pdm.Word {
	off := 2 + i*(1+t.cfg.SatWords)
	return stripe[off : off+1+t.cfg.SatWords]
}

// findInChain walks a bucket's stripes and overflow chain looking for
// key. It returns the satellite if found. visit, when non-nil, sees
// every (stripeIndex, contents) pair read, in order — Insert reuses the
// walk to find free space.
func (t *Table) findInChain(key pdm.Word, visit func(stripe int, data []pdm.Word)) ([]pdm.Word, bool) {
	for s := 0; s < t.cfg.BucketStripes; s++ {
		stripe := t.bucketStripe(t.h.Range(uint64(key), t.cfg.Buckets)) + s
		for {
			data := t.m.ReadStripe(stripe)
			if visit != nil {
				visit(stripe, data)
			}
			count := t.clampCount(int(data[0]))
			for i := 0; i < count; i++ {
				rec := t.recordAt(data, i)
				if rec[0] == key {
					return rec[1:], true
				}
			}
			next := int(data[1])
			if next == 0 || next-1 >= t.nextOv || next-1 <= stripe {
				break // no overflow, or a corrupt pointer: stop the walk
			}
			stripe = next - 1
		}
	}
	return nil, false
}

// Lookup returns a copy of x's satellite and whether x is present. Cost:
// one parallel I/O per stripe in x's bucket chain (exactly one in the
// no-overflow regime).
func (t *Table) Lookup(x pdm.Word) ([]pdm.Word, bool) {
	defer t.m.Span(obs.TagLookup)()
	sat, ok := t.findInChain(x, nil)
	if !ok {
		return nil, false
	}
	out := make([]pdm.Word, t.cfg.SatWords)
	copy(out, sat)
	return out, true
}

// Contains reports presence at Lookup cost.
func (t *Table) Contains(x pdm.Word) bool {
	_, ok := t.Lookup(x)
	return ok
}

// Insert stores (x, sat), replacing any existing satellite. Cost: the
// chain walk plus one stripe write — 2 parallel I/Os in the no-overflow
// regime, more down a chain, plus one extra write when a new overflow
// stripe must be linked.
func (t *Table) Insert(x pdm.Word, sat []pdm.Word) error {
	if len(sat) != t.cfg.SatWords {
		return fmt.Errorf("hashing: satellite of %d words, config says %d", len(sat), t.cfg.SatWords)
	}
	defer t.m.Span(obs.TagInsert)()
	type seen struct {
		stripe int
		data   []pdm.Word
	}
	var walk []seen
	old, ok := t.findInChain(x, func(stripe int, data []pdm.Word) {
		walk = append(walk, seen{stripe, data})
	})
	if ok {
		copy(old, sat) // update in place; old aliases the last-read stripe
		last := walk[len(walk)-1]
		t.m.WriteStripe(last.stripe, last.data)
		return nil
	}
	// Append to the first stripe in the chain with room.
	for _, s := range walk {
		count := t.clampCount(int(s.data[0]))
		if count < t.recs {
			rec := t.recordAt(s.data, count)
			rec[0] = x
			copy(rec[1:], sat)
			s.data[0] = pdm.Word(count + 1)
			t.m.WriteStripe(s.stripe, s.data)
			t.n++
			return nil
		}
	}
	// Chain full: allocate an overflow stripe, link it from the tail.
	ov := t.nextOv
	t.nextOv++
	t.Overflows++
	tail := walk[len(walk)-1]
	tail.data[1] = pdm.Word(ov + 1)
	t.m.WriteStripe(tail.stripe, tail.data)
	fresh := make([]pdm.Word, 2+1+t.cfg.SatWords)
	fresh[0] = 1
	fresh[2] = x
	copy(fresh[3:], sat)
	t.m.WriteStripe(ov, fresh)
	t.n++
	return nil
}

// Delete removes x and reports whether it was present.
func (t *Table) Delete(x pdm.Word) bool {
	defer t.m.Span(obs.TagDelete)()
	var lastStripe int
	var lastData []pdm.Word
	sat, ok := t.findInChain(x, func(stripe int, data []pdm.Word) {
		lastStripe, lastData = stripe, data
	})
	if !ok {
		return false
	}
	// sat aliases lastData; locate the record index and swap-remove.
	count := t.clampCount(int(lastData[0]))
	for i := 0; i < count; i++ {
		rec := t.recordAt(lastData, i)
		if rec[0] == x {
			lastRec := t.recordAt(lastData, count-1)
			copy(rec, lastRec)
			for j := range lastRec {
				lastRec[j] = 0
			}
			lastData[0] = pdm.Word(count - 1)
			t.m.WriteStripe(lastStripe, lastData)
			t.n--
			return true
		}
	}
	_ = sat
	panic("hashing: findInChain found a key Delete cannot locate")
}

// DGMConfig returns the Table configuration simulating the dictionary of
// Dietzfelbinger et al. [7]: Θ(log n)-capacity buckets, so operations
// are O(1) I/Os with high probability and linear only in the adversarial
// worst case.
func DGMConfig(capacity, satWords int, seed uint64) TableConfig {
	return TableConfig{
		Capacity: capacity,
		SatWords: satWords,
		Seed:     seed,
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}

package hashing

import (
	"fmt"

	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// CuckooConfig parameterizes cuckoo hashing in the parallel disk model.
type CuckooConfig struct {
	// Capacity is the maximum number of keys. Required.
	Capacity int
	// SatWords is the satellite size per key, in words. The paper's
	// bandwidth analysis: each of the two tables occupies half the
	// disks, so a cell holds up to B·D/2 words and lookups still cost
	// one parallel I/O — bandwidth B·D/2.
	SatWords int
	// CellsPerTable sizes each table; 0 defaults to ⌈1.1·Capacity⌉
	// (total load factor ≈ 0.45, inside cuckoo hashing's threshold).
	CellsPerTable int
	// Independence is the hash family's k; 0 defaults to 2⌈log₂ n⌉.
	Independence int
	// MaxLoop bounds an eviction walk before a rehash; 0 defaults to
	// 6⌈log₂ n⌉ + 10.
	MaxLoop int
	// Seed draws the two hash functions.
	Seed uint64
}

// Cuckoo is cuckoo hashing [13] on a machine with an even number of
// disks: table 0 lives on the first half, table 1 on the second. A cell
// is one block row across a table's disks, holding a single record.
// Lookups read both candidate cells in one batch — one parallel I/O —
// and updates are amortized expected constant, with the occasional
// eviction walk or full rehash that Figure 1's "O(1) am. exp." entry
// summarizes (and that experiment E7-tails makes visible).
type Cuckoo struct {
	m   *pdm.Machine
	cfg CuckooConfig
	h   [2]*Poly
	n   int

	// Rehashes counts full-table rebuilds; Evictions counts individual
	// displacement steps.
	Rehashes  int
	Evictions int
}

// Cell layout: word0 = occupied flag, word1 = key, then satellite.

// NewCuckoo creates an empty structure on m (m.D() must be even).
func NewCuckoo(m *pdm.Machine, cfg CuckooConfig) (*Cuckoo, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("hashing: Capacity %d must be positive", cfg.Capacity)
	}
	if cfg.SatWords < 0 {
		return nil, fmt.Errorf("hashing: negative SatWords")
	}
	if m.D()%2 != 0 {
		return nil, fmt.Errorf("hashing: cuckoo needs an even disk count, got %d", m.D())
	}
	half := m.D() / 2
	if 2+cfg.SatWords > half*m.B() {
		return nil, fmt.Errorf("hashing: record of %d words exceeds the half-stripe cell of %d",
			2+cfg.SatWords, half*m.B())
	}
	if cfg.CellsPerTable == 0 {
		cfg.CellsPerTable = cfg.Capacity + ceilDiv(cfg.Capacity, 10)
	}
	if cfg.Independence == 0 {
		cfg.Independence = 2 * log2ceil(cfg.Capacity)
	}
	if cfg.MaxLoop == 0 {
		cfg.MaxLoop = 6*log2ceil(cfg.Capacity) + 10
	}
	c := &Cuckoo{m: m, cfg: cfg}
	c.deriveHashes(cfg.Seed)
	return c, nil
}

func (c *Cuckoo) deriveHashes(seed uint64) {
	c.h[0] = NewPoly(c.cfg.Independence, seed)
	c.h[1] = NewPoly(c.cfg.Independence, seed+0x6a09e667f3bcc909)
}

// Len returns the number of keys stored.
func (c *Cuckoo) Len() int { return c.n }

// cellAddrs returns the block addresses of cell i of table t.
func (c *Cuckoo) cellAddrs(table, cell int, dst []pdm.Addr) []pdm.Addr {
	half := c.m.D() / 2
	for d := 0; d < half; d++ {
		dst = append(dst, pdm.Addr{Disk: table*half + d, Block: cell})
	}
	return dst
}

// readBoth fetches x's two candidate cells in one parallel I/O.
func (c *Cuckoo) readBoth(x pdm.Word) (cells [2][]pdm.Word) {
	addrs := c.cellAddrs(0, c.h[0].Range(uint64(x), c.cfg.CellsPerTable), nil)
	addrs = c.cellAddrs(1, c.h[1].Range(uint64(x), c.cfg.CellsPerTable), addrs)
	flat := c.m.BatchRead(addrs)
	half := c.m.D() / 2
	for t := 0; t < 2; t++ {
		var cell []pdm.Word
		for _, blk := range flat[t*half : (t+1)*half] {
			cell = append(cell, blk...)
		}
		cells[t] = cell
	}
	return cells
}

// writeCell stores a cell's contents in one batched write.
func (c *Cuckoo) writeCell(table, cell int, data []pdm.Word) {
	half := c.m.D() / 2
	var writes []pdm.BlockWrite
	for d := 0; d < half; d++ {
		lo := d * c.m.B()
		hi := lo + c.m.B()
		if lo >= len(data) {
			break
		}
		if hi > len(data) {
			hi = len(data)
		}
		writes = append(writes, pdm.BlockWrite{
			Addr: pdm.Addr{Disk: table*half + d, Block: cell},
			Data: data[lo:hi],
		})
	}
	c.m.BatchWrite(writes)
}

// Lookup returns a copy of x's satellite and whether x is present.
// Cost: exactly one parallel I/O.
func (c *Cuckoo) Lookup(x pdm.Word) ([]pdm.Word, bool) {
	defer c.m.Span(obs.TagLookup)()
	cells := c.readBoth(x)
	for _, cell := range cells {
		if cell[0] == 1 && cell[1] == x {
			out := make([]pdm.Word, c.cfg.SatWords)
			copy(out, cell[2:2+c.cfg.SatWords])
			return out, true
		}
	}
	return nil, false
}

// Contains reports presence at Lookup cost.
func (c *Cuckoo) Contains(x pdm.Word) bool {
	_, ok := c.Lookup(x)
	return ok
}

// Insert stores (x, sat), evicting along the cuckoo path as needed and
// rehashing with fresh functions if the walk exceeds MaxLoop.
func (c *Cuckoo) Insert(x pdm.Word, sat []pdm.Word) error {
	if len(sat) != c.cfg.SatWords {
		return fmt.Errorf("hashing: satellite of %d words, config says %d", len(sat), c.cfg.SatWords)
	}
	defer c.m.Span(obs.TagInsert)()
	cells := c.readBoth(x)
	// Update in place.
	for t, cell := range cells {
		if cell[0] == 1 && cell[1] == x {
			copy(cell[2:], sat)
			c.writeCell(t, c.h[t].Range(uint64(x), c.cfg.CellsPerTable), cell)
			return nil
		}
	}
	if c.n >= c.cfg.Capacity {
		return ErrCuckooFull
	}
	// Empty candidate?
	for t, cell := range cells {
		if cell[0] == 0 {
			c.storeRecord(t, c.h[t].Range(uint64(x), c.cfg.CellsPerTable), cell, x, sat)
			c.n++
			return nil
		}
	}
	// Eviction walk, starting by displacing table 0's occupant.
	if err := c.evict(x, sat, cells[0], 0); err != nil {
		return err
	}
	c.n++
	return nil
}

func (c *Cuckoo) storeRecord(table, cell int, data []pdm.Word, key pdm.Word, sat []pdm.Word) {
	data[0] = 1
	data[1] = key
	copy(data[2:], sat)
	for i := 2 + len(sat); i < len(data); i++ {
		data[i] = 0
	}
	c.writeCell(table, cell, data)
}

// evict places (x, sat) in the given table-`table` cell (whose current
// contents are in data), then re-places the displaced record, walking
// between the tables.
func (c *Cuckoo) evict(x pdm.Word, sat []pdm.Word, data []pdm.Word, table int) error {
	key, kSat := x, append([]pdm.Word(nil), sat...)
	for step := 0; step < c.cfg.MaxLoop; step++ {
		cell := c.h[table].Range(uint64(key), c.cfg.CellsPerTable)
		victimKey := data[1]
		victimSat := append([]pdm.Word(nil), data[2:2+c.cfg.SatWords]...)
		occupied := data[0] == 1
		c.storeRecord(table, cell, data, key, kSat)
		if !occupied {
			return nil
		}
		c.Evictions++
		key, kSat = victimKey, victimSat
		table = 1 - table
		// Read the victim's cell in the other table (one parallel I/O —
		// only half the disks, but still a single step).
		addrs := c.cellAddrs(table, c.h[table].Range(uint64(key), c.cfg.CellsPerTable), nil)
		flat := c.m.BatchRead(addrs)
		data = nil
		for _, blk := range flat {
			data = append(data, blk...)
		}
	}
	// Walk too long: rehash everything with fresh functions, then place
	// the pending record.
	return c.rehash(key, kSat)
}

// ErrCuckooFull is returned when an insert would exceed Capacity or a
// rehash cannot settle.
var ErrCuckooFull = errFull{}

type errFull struct{}

func (errFull) Error() string { return "hashing: cuckoo table full" }

// rehash collects every record, draws fresh hash functions, and
// reinserts — the amortized-expected-constant tail of [13].
func (c *Cuckoo) rehash(pendingKey pdm.Word, pendingSat []pdm.Word) error {
	defer c.m.Span(obs.TagRehash)()
	c.Rehashes++
	if c.Rehashes > 64 {
		return ErrCuckooFull
	}
	type rec struct {
		key pdm.Word
		sat []pdm.Word
	}
	var recs []rec
	half := c.m.D() / 2
	for t := 0; t < 2; t++ {
		for cell := 0; cell < c.cfg.CellsPerTable; cell++ {
			flat := c.m.BatchRead(c.cellAddrs(t, cell, nil))
			var data []pdm.Word
			for _, blk := range flat {
				data = append(data, blk...)
			}
			if data[0] == 1 {
				recs = append(recs, rec{data[1], append([]pdm.Word(nil), data[2:2+c.cfg.SatWords]...)})
			}
			// Clear while we are here.
			zero := make([]pdm.Word, half*c.m.B())
			c.writeCell(t, cell, zero)
		}
	}
	recs = append(recs, rec{pendingKey, pendingSat})
	seed := c.cfg.Seed + uint64(c.Rehashes)*0x9e3779b97f4a7c15
	c.deriveHashes(seed)
	n := c.n
	c.n = 0
	for _, r := range recs {
		if err := c.insertNoCount(r.key, r.sat); err != nil {
			return err
		}
	}
	c.n = n // the pending record's count is added by the caller
	return nil
}

// insertNoCount re-places a record during rehash without touching n.
func (c *Cuckoo) insertNoCount(x pdm.Word, sat []pdm.Word) error {
	cells := c.readBoth(x)
	for t, cell := range cells {
		if cell[0] == 0 {
			c.storeRecord(t, c.h[t].Range(uint64(x), c.cfg.CellsPerTable), cell, x, sat)
			return nil
		}
	}
	return c.evict(x, sat, cells[0], 0)
}

// Delete removes x and reports whether it was present.
func (c *Cuckoo) Delete(x pdm.Word) bool {
	defer c.m.Span(obs.TagDelete)()
	cells := c.readBoth(x)
	for t, cell := range cells {
		if cell[0] == 1 && cell[1] == x {
			zero := make([]pdm.Word, len(cell))
			c.writeCell(t, c.h[t].Range(uint64(x), c.cfg.CellsPerTable), zero)
			c.n--
			return true
		}
	}
	return false
}

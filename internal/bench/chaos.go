package bench

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pdmdict/internal/core"
	"pdmdict/internal/fault"
	"pdmdict/internal/heal"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// PatrolClient is the client ID the chaos harness charges its patrol
// scrub to — distinct from real clients and from heal.RepairClient, so
// detection cost and repair cost stay separable in the op accounting.
const PatrolClient = -2

// ChaosConfig shapes one chaos soak run (pdmbench -chaos).
type ChaosConfig struct {
	// Disks and BlockWords shape the machine (defaults 8 and 64).
	Disks      int `json:"disks"`
	BlockWords int `json:"block_words"`
	// Replicas is the replication degree K (default 2, minimum 2: the
	// soak deliberately destroys disks).
	Replicas int `json:"replicas"`
	// Keys is how many keys are preloaded and then hammered (default 512).
	Keys int `json:"keys"`
	// Clients is the number of concurrent lookup goroutines (default 8).
	Clients int `json:"clients"`
	// Rounds, Gap, and CorruptEvery shape the generated damage rotation
	// (fault.GenerateSchedule); defaults 6 rounds, gap 400, every 3rd
	// round a bit flip.
	Rounds       int   `json:"rounds"`
	Gap          int64 `json:"gap"`
	CorruptEvery int   `json:"corrupt_every"`
	// Seed drives the fault plan and the schedule generator (default 1).
	Seed uint64 `json:"seed"`
	// TransientProb and StallProb/StallSteps set the baseline drizzle on
	// top of the scheduled outages (defaults 0.05 and 0.02/2).
	TransientProb float64 `json:"transient_prob"`
	StallProb     float64 `json:"stall_prob"`
	StallSteps    int     `json:"stall_steps"`
	// Timeout bounds the wall-clock wait for the schedule to drain and
	// the supervisor to converge (default 60s). Wall time, not modeled
	// time: it only guards against a wedged run.
	Timeout time.Duration `json:"-"`
}

func (c *ChaosConfig) normalize() {
	if c.Disks <= 0 {
		c.Disks = 8
	}
	if c.BlockWords <= 0 {
		c.BlockWords = 64
	}
	if c.Replicas < 2 {
		c.Replicas = 2
	}
	if c.Keys <= 0 {
		c.Keys = 512
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Rounds <= 0 {
		c.Rounds = 6
	}
	if c.Gap <= 0 {
		c.Gap = 400
	}
	if c.CorruptEvery == 0 {
		c.CorruptEvery = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TransientProb == 0 {
		c.TransientProb = 0.05
	}
	if c.StallProb == 0 {
		c.StallProb = 0.02
	}
	if c.StallSteps <= 0 {
		c.StallSteps = 2
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
}

// ChaosResult is one chaos soak's outcome: what the schedule did, what
// it cost, and where every parallel-I/O step went. Exact is the headline
// invariant — machine totals equal client + patrol + repair charges,
// nothing unattributed.
type ChaosResult struct {
	Config        ChaosConfig          `json:"config"`
	EventsApplied int                  `json:"events_applied"`
	Schedule      []fault.ChaosEvent   `json:"schedule"`
	Lookups       int64                `json:"lookups"`
	WallNanos     int64                `json:"wall_ns"`
	ParallelIOs   int64                `json:"parallel_ios"`
	BlockReads    int64                `json:"block_reads"`
	BlockWrites   int64                `json:"block_writes"`
	ClientSteps   int64                `json:"client_steps"`
	PatrolSteps   int64                `json:"patrol_steps"`
	RepairSteps   int64                `json:"repair_steps"`
	RepairEpisodes int                 `json:"repair_episodes"`
	Exact         bool                 `json:"exact_attribution"`
	Retries       int64                `json:"retry_batches"`
	Hedges        int64                `json:"hedged_reads"`
	BackoffSteps  int64                `json:"backoff_steps"`
	RepairChunks  int64                `json:"repair_chunks"`
	RepairRows    int64                `json:"repair_rows"`
	ScrubClean    bool                 `json:"scrub_clean"`
	// AlertTransitions and AlertCycles report the watchdog that rode the
	// soak: total alert state-machine transitions, and complete
	// fire → resolve cycles per rule. The soak requires at least one
	// cycle each from the balance auditor and the degraded-capacity rule
	// — the watchdog must both catch every scripted outage and stand down
	// once healing converges.
	AlertTransitions int64            `json:"alert_transitions"`
	AlertCycles      map[string]int64 `json:"alert_cycles"`
	Clients       map[string]*obs.OpAgg `json:"per_client,omitempty"`
	Tags          map[string]*obs.OpAgg `json:"per_tag,omitempty"`
}

// clientLabel names an op-accounting client row for the JSON report.
func clientLabel(id int) string {
	switch id {
	case heal.RepairClient:
		return "repair"
	case PatrolClient:
		return "patrol"
	default:
		return "client_" + strconv.Itoa(id)
	}
}

// RunChaos builds a replicated dictionary on a fresh machine, binds a
// generated chaos schedule to the machine's step clock, and soaks it:
// concurrent clients hammer degraded lookups, a patrol scrub sweeps for
// silent damage, and the heal.Supervisor repairs in the background —
// unaided. It returns a non-nil error if any soak invariant breaks:
// a key unavailable or wrong mid-soak, the schedule or supervisor
// failing to converge before cfg.Timeout, machine totals not exactly
// attributed to client/patrol/repair tokens, or the post-soak scrub
// finding damage. CI runs it per seed and checks the exit code.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	cfg.normalize()
	res := ChaosResult{Config: cfg}

	m := newMachine(pdm.Config{D: cfg.Disks, B: cfg.BlockWords})
	// The baseline drizzle must not churn disks through Suspect, or the
	// schedule's AwaitHealthy gates would never open; promotion needs a
	// burst no drizzle can produce. Hedging still triggers off stalls.
	m.SetSuspectThresholds(500, 64)
	acct := obs.NewOpAccountant()
	acct.SampleEvery = 64
	// The watchdog wraps the sink chain so it sees every event (health
	// annotations included) and its alert events reach the suite hook.
	var sinks pdm.Hook = acct
	if suiteHook != nil {
		sinks = obs.Tee(suiteHook, acct)
	}
	mon := obs.NewMonitor(sinks, obs.DefaultRules()...)
	m.SetHook(mon)

	bd, err := core.NewBasic(m, core.BasicConfig{
		Capacity:  cfg.Keys,
		SatWords:  3,
		K:         cfg.Replicas,
		Replicate: true,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return res, fmt.Errorf("chaos: build dictionary: %w", err)
	}
	key := func(i int) pdm.Word { return pdm.Word(i)*2654435761 + 1 }
	for i := 0; i < cfg.Keys; i++ {
		if err := bd.Insert(key(i), []pdm.Word{pdm.Word(i), key(i), key(i) ^ 0xabc}); err != nil {
			return res, fmt.Errorf("chaos: preload key %d: %w", i, err)
		}
	}
	bd.SetRetryPolicy(pdm.RetryPolicy{MaxRetries: 6, BackoffBase: 2, BackoffFactor: 2, Hedge: true})

	plan := fault.NewPlan(cfg.Seed)
	plan.SetTransient(cfg.TransientProb)
	plan.SetStall(cfg.StallProb, cfg.StallSteps)
	schedule := fault.NewSchedule(plan, fault.GenerateSchedule(cfg.Seed, fault.ChaosProfile{
		Disks:        cfg.Disks,
		Blocks:       bd.BlocksPerDisk(),
		Rounds:       cfg.Rounds,
		Gap:          cfg.Gap,
		CorruptEvery: cfg.CorruptEvery,
	}))
	schedule.BindMachine(m)
	res.Schedule = schedule.Events()

	base := m.Stats()
	m.SetFaultInjector(schedule)

	sup := heal.New(m, bd, heal.Config{ChunkRows: 4, MaxAttempts: 8})
	// A firing degraded-capacity alert nudges the supervisor directly —
	// the alert edge and the health notification race benignly (Wake is a
	// non-blocking send on the same channel).
	mon.SetListener(func(ts []obs.AlertTransition) {
		for _, t := range ts {
			if t.Rule == "degraded_capacity" && t.To == obs.AlertFiring {
				sup.Wake()
			}
		}
	})
	sup.Start()

	start := time.Now()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var lookups atomic.Int64
	var failures atomic.Int64
	var firstFail atomic.Value // string

	// Patrol scrub: the detector for scripted corruption on blocks the
	// key workload never reads, charged to its own client ID.
	var patrolOps []*pdm.Op
	wg.Add(1)
	go func() {
		defer wg.Done()
		row := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			op := m.NewOp(PatrolClient, 1)
			patrolOps = append(patrolOps, op)
			wrapped := false
			for disk := 0; disk < cfg.Disks; disk++ {
				if m.DiskState(disk) != pdm.Healthy {
					continue // outages are the supervisor's problem
				}
				if _, _, done := bd.ScrubRange(op, disk, row, 2); done {
					wrapped = true
				}
			}
			row += 2
			if wrapped || row > 1<<16 {
				row = 0
			}
		}
	}()

	clientOps := make([][]*pdm.Op, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := m.NewOp(c, 1)
				clientOps[c] = append(clientOps[c], op)
				sat, ok, err := bd.LookupTryOp(op, key(i%cfg.Keys))
				lookups.Add(1)
				if err != nil || !ok || sat[1] != key(i%cfg.Keys) {
					failures.Add(1)
					firstFail.CompareAndSwap(nil, fmt.Sprintf("client %d key %d: ok=%v err=%v", c, i%cfg.Keys, ok, err))
					return
				}
				i += 5
			}
		}(c)
	}

	// Drained means every event fired, every disk back to Healthy, the
	// supervisor idle, every scripted flip verifiably rewritten (a
	// final-round flip must not hide behind a healthy-looking array), and
	// the watchdog's outage rules stood down — the soak keeps traffic
	// flowing until the balance and degraded-capacity alerts have walked
	// their fire → resolve cycle, so the timeline always closes.
	drained := func() bool {
		if !(schedule.Done() && m.AllDisksHealthy() && sup.Idle()) {
			return false
		}
		for _, e := range res.Schedule {
			if e.Action == fault.ChaosCorrupt && !m.BlockClean(e.Addr) {
				return false
			}
		}
		for _, r := range mon.Snapshot().Rules {
			if (r.Rule == "balance" || r.Rule == "degraded_capacity") && r.Firing+r.Pending > 0 {
				return false
			}
		}
		return true
	}
	var timedOut bool
	for !drained() {
		if failures.Load() > 0 {
			break
		}
		if time.Since(start) > cfg.Timeout {
			timedOut = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	sup.Stop()
	res.WallNanos = time.Since(start).Nanoseconds()
	res.Lookups = lookups.Load()
	res.EventsApplied = schedule.Applied()

	// The attribution window closes here, before any unattributed
	// verification I/O below.
	delta := m.Stats().Sub(base)
	res.ParallelIOs = delta.ParallelIOs
	res.BlockReads = delta.BlockReads
	res.BlockWrites = delta.BlockWrites
	sum := func(ops []*pdm.Op) (s int64) {
		for _, op := range ops {
			s += op.Steps()
		}
		return s
	}
	for _, ops := range clientOps {
		res.ClientSteps += sum(ops)
	}
	res.PatrolSteps = sum(patrolOps)
	repairOps := sup.Ops()
	res.RepairSteps = sum(repairOps)
	res.RepairEpisodes = len(repairOps)
	res.Exact = res.ClientSteps+res.PatrolSteps+res.RepairSteps == res.ParallelIOs

	res.AlertTransitions = mon.Snapshot().Transitions
	res.AlertCycles = mon.Cycles()

	rep := m.Health()
	res.Retries = rep.Retries
	res.Hedges = rep.Hedges
	res.BackoffSteps = rep.BackoffSteps
	res.RepairChunks = rep.RepairChunks
	res.RepairRows = rep.RepairRows

	res.Clients = make(map[string]*obs.OpAgg)
	for id, agg := range acct.Clients() {
		res.Clients[clientLabel(id)] = agg
	}
	res.Tags = acct.Tags()

	// Post-soak verification runs fault-free and outside the attribution
	// window: the soak is over, this is the autopsy.
	m.SetFaultInjector(nil)
	res.ScrubClean = len(bd.Scrub()) == 0

	if msg, _ := firstFail.Load().(string); msg != "" {
		return res, fmt.Errorf("chaos: %d lookup failures mid-soak, first: %s", failures.Load(), msg)
	}
	if timedOut {
		return res, fmt.Errorf("chaos: did not converge within %v: applied %d/%d events, health %+v, supervisor idle=%v",
			cfg.Timeout, res.EventsApplied, len(res.Schedule), m.Health().Unhealthy(), sup.Idle())
	}
	if !res.Exact {
		return res, fmt.Errorf("chaos: unattributed I/O: clients %d + patrol %d + repair %d != machine %d",
			res.ClientSteps, res.PatrolSteps, res.RepairSteps, res.ParallelIOs)
	}
	if !res.ScrubClean {
		return res, fmt.Errorf("chaos: post-soak scrub found damage")
	}
	if res.RepairEpisodes == 0 || res.RepairChunks == 0 {
		return res, fmt.Errorf("chaos: schedule drained but no repair episodes ran (episodes=%d chunks=%d)",
			res.RepairEpisodes, res.RepairChunks)
	}
	if res.AlertCycles["balance"] == 0 || res.AlertCycles["degraded_capacity"] == 0 {
		return res, fmt.Errorf("chaos: watchdog missed the soak: fire→resolve cycles balance=%d degraded_capacity=%d (want ≥1 each)",
			res.AlertCycles["balance"], res.AlertCycles["degraded_capacity"])
	}
	for i := 0; i < cfg.Keys; i++ {
		sat, ok, err := bd.LookupTry(key(i))
		if err != nil || !ok || sat[1] != key(i) {
			return res, fmt.Errorf("chaos: key %d wrong after soak: ok=%v err=%v", i, ok, err)
		}
	}
	return res, nil
}

// ChaosTable renders a chaos result as a report table for the text
// formats; the JSON report carries the full ChaosResult.
func ChaosTable(res ChaosResult) *Table {
	tb := &Table{
		ID:    "chaos",
		Title: fmt.Sprintf("Chaos soak (seed %d): %d events over %d disks, %d clients", res.Config.Seed, len(res.Schedule), res.Config.Disks, res.Config.Clients),
		Columns: []string{
			"lookups", "events", "repair episodes", "repair chunks",
			"retries", "hedges", "backoff steps", "client steps", "patrol steps", "repair steps", "machine steps", "exact", "scrub clean", "alert cycles",
		},
		Notes: []string{
			"exact = machine parallel-I/O total equals client+patrol+repair op charges; recovery cost is attributed, never smeared.",
			"alert cycles = complete fire→resolve walks of the watchdog's balance and degraded-capacity rules (each must be ≥1).",
		},
	}
	tb.AddRow(
		res.Lookups, res.EventsApplied, res.RepairEpisodes, res.RepairChunks,
		res.Retries, res.Hedges, res.BackoffSteps, res.ClientSteps, res.PatrolSteps, res.RepairSteps, res.ParallelIOs, res.Exact, res.ScrubClean,
		fmt.Sprintf("bal=%d degr=%d", res.AlertCycles["balance"], res.AlertCycles["degraded_capacity"]),
	)
	return tb
}

// Package bench is the experiment harness: one experiment per
// table/figure/claim of the paper (DESIGN.md's per-experiment index).
// Each experiment regenerates its result as a Table that cmd/pdmbench
// prints and EXPERIMENTS.md records; the root bench_test.go exposes the
// same experiments as testing.B benchmarks.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strings"

	"pdmdict/internal/obs"
)

// Table is one rendered experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "E1-fig1").
	ID string `json:"id"`
	// Title describes what the table shows and which part of the paper
	// it reproduces.
	Title string `json:"title"`
	// Columns are the header labels.
	Columns []string `json:"columns"`
	// Rows hold the formatted cells.
	Rows [][]string `json:"rows"`
	// Notes are free-form remarks printed under the table.
	Notes []string `json:"notes,omitempty"`
	// Hists are log₂-bucketed parallel-I/O-per-operation distributions
	// behind the table's summary rows, where the experiment records them.
	// They appear only in the JSON output — the full distribution does
	// not fit a text cell.
	Hists []obs.Summary `json:"histograms,omitempty"`
}

// AddHist digests the per-operation cost samples into a log₂ histogram
// summary attached to the table's JSON form.
func (t *Table) AddHist(name string, costs []int64) {
	var h obs.Hist
	for _, c := range costs {
		h.Observe(c)
	}
	t.Hists = append(t.Hists, h.Summarize(name))
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown formats the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// CSV formats the table as RFC-4180-ish CSV (quotes around cells
// containing commas or quotes), with a leading comment line naming the
// experiment.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// ReportSchemaVersion identifies the JSON document shape pdmbench
// emits. Version 1 was a bare array of tables; version 2 wrapped it in
// a Report so the schema can evolve without breaking consumers; version
// 3 added p999 to histogram digests and per-operation SLO quantiles to
// the parallel-throughput tables; version 4 added the chaos-soak
// results (pdmbench -chaos); version 5 added the group-commit
// scheduler comparison (pdmbench -parallel -sched). Bump this whenever
// Report or Table changes shape.
const ReportSchemaVersion = 5

// Report is the top-level JSON document of a -json run.
type Report struct {
	SchemaVersion int     `json:"schema_version"`
	Tables        []Table `json:"tables"`
	// Throughput carries the raw multi-client results — per-client SLO
	// digests included — when the run was pdmbench -parallel.
	Throughput []ThroughputResult `json:"throughput,omitempty"`
	// Chaos carries the chaos-soak results — schedule, health counters,
	// and exact cost attribution — when the run was pdmbench -chaos.
	Chaos []ChaosResult `json:"chaos,omitempty"`
	// Sched carries the group-commit scheduler comparison — direct vs
	// coalesced modeled steps per operation, per client count — when
	// the run was pdmbench -parallel -sched.
	Sched []SchedResult `json:"sched,omitempty"`
}

// Format selects a Table rendering.
type Format int

// Output formats.
const (
	FormatText Format = iota
	FormatMarkdown
	FormatCSV
	// FormatJSON emits the whole run as one JSON document — a Report
	// carrying schema_version and the Table objects, including the
	// per-operation I/O histograms that the text formats omit.
	FormatJSON
)

// RunFormat is Run with an explicit output format.
func RunFormat(pattern string, w io.Writer, format Format) ([]Table, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("bench: bad pattern %q: %w", pattern, err)
	}
	var all []Table
	matched := 0
	for _, e := range Experiments() {
		if !re.MatchString(e.ID) {
			continue
		}
		matched++
		if format != FormatCSV && format != FormatJSON {
			fmt.Fprintf(w, "running %s: %s\n", e.ID, e.Title)
		}
		tables := e.Run()
		all = append(all, tables...)
		for _, t := range tables {
			switch format {
			case FormatMarkdown:
				fmt.Fprintln(w, t.Markdown())
			case FormatCSV:
				fmt.Fprintln(w, t.CSV())
			case FormatJSON:
				// Emitted as one document after the loop.
			default:
				fmt.Fprintln(w, t.Render())
			}
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("bench: no experiment matches %q", pattern)
	}
	if format == FormatJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(Report{SchemaVersion: ReportSchemaVersion, Tables: all}); err != nil {
			return nil, fmt.Errorf("bench: encoding JSON: %w", err)
		}
	}
	return all, nil
}

// WriteTables renders tables to w in the given format — the same
// rendering RunFormat applies, for callers (like pdmbench -parallel)
// that produce tables outside the experiment registry.
func WriteTables(w io.Writer, tables []Table, format Format) error {
	return WriteThroughput(w, tables, nil, format)
}

// WriteThroughput is WriteTables plus the raw throughput results, which
// only the JSON format carries (the text formats render the tables and
// the results ride behind them in the Report document).
func WriteThroughput(w io.Writer, tables []Table, results []ThroughputResult, format Format) error {
	if format == FormatJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(Report{SchemaVersion: ReportSchemaVersion, Tables: tables, Throughput: results}); err != nil {
			return fmt.Errorf("bench: encoding JSON: %w", err)
		}
		return nil
	}
	for _, t := range tables {
		switch format {
		case FormatMarkdown:
			fmt.Fprintln(w, t.Markdown())
		case FormatCSV:
			fmt.Fprintln(w, t.CSV())
		default:
			fmt.Fprintln(w, t.Render())
		}
	}
	return nil
}

// WriteSched renders the scheduler-comparison tables plus, for JSON,
// the raw per-client-count rows.
func WriteSched(w io.Writer, tables []Table, results []SchedResult, format Format) error {
	if format == FormatJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(Report{SchemaVersion: ReportSchemaVersion, Tables: tables, Sched: results}); err != nil {
			return fmt.Errorf("bench: encoding JSON: %w", err)
		}
		return nil
	}
	for _, t := range tables {
		switch format {
		case FormatMarkdown:
			fmt.Fprintln(w, t.Markdown())
		case FormatCSV:
			fmt.Fprintln(w, t.CSV())
		default:
			fmt.Fprintln(w, t.Render())
		}
	}
	return nil
}

// WriteChaos renders chaos tables plus, for JSON, the raw soak results
// with their schedules and attribution breakdowns.
func WriteChaos(w io.Writer, tables []Table, results []ChaosResult, format Format) error {
	if format == FormatJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(Report{SchemaVersion: ReportSchemaVersion, Tables: tables, Chaos: results}); err != nil {
			return fmt.Errorf("bench: encoding JSON: %w", err)
		}
		return nil
	}
	for _, t := range tables {
		switch format {
		case FormatMarkdown:
			fmt.Fprintln(w, t.Markdown())
		case FormatCSV:
			fmt.Fprintln(w, t.CSV())
		default:
			fmt.Fprintln(w, t.Render())
		}
	}
	return nil
}

// Experiment is one entry of the suite.
type Experiment struct {
	// ID matches DESIGN.md's per-experiment index.
	ID string
	// Title is a one-line description.
	Title string
	// Run executes the experiment and returns its tables.
	Run func() []Table
}

// registry holds every experiment, keyed by ID.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns the registered experiments sorted by ID.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes every experiment whose ID matches the pattern (a regular
// expression; "" matches all), writing rendered tables to w. It returns
// the tables and an error if the pattern matched nothing.
func Run(pattern string, w io.Writer, markdown bool) ([]Table, error) {
	format := FormatText
	if markdown {
		format = FormatMarkdown
	}
	return RunFormat(pattern, w, format)
}

// meter accumulates per-operation cost samples.
type meter struct {
	costs []int64
}

func (m *meter) add(c int64) { m.costs = append(m.costs, c) }

func (m *meter) avg() float64 {
	if len(m.costs) == 0 {
		return 0
	}
	var sum int64
	for _, c := range m.costs {
		sum += c
	}
	return float64(sum) / float64(len(m.costs))
}

func (m *meter) max() int64 {
	var max int64
	for _, c := range m.costs {
		if c > max {
			max = c
		}
	}
	return max
}

// percentile returns the p-quantile (p in [0,1]) of the samples.
func (m *meter) percentile(p float64) int64 {
	if len(m.costs) == 0 {
		return 0
	}
	sorted := append([]int64(nil), m.costs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

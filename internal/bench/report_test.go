package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden file:
//
//	go test ./internal/bench -run ReportSchemaGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

func TestReportSchemaGolden(t *testing.T) {
	tab := Table{
		ID:      "EX-schema",
		Title:   "schema fixture",
		Columns: []string{"metric", "value"},
		Notes:   []string{"fixed content — exercises every serialized field"},
	}
	tab.AddRow("avg", 1.25)
	tab.AddHist("pIOs/op", []int64{1, 1, 2, 4})
	report := Report{SchemaVersion: ReportSchemaVersion, Tables: []Table{tab}}
	got, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "report_schema.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report JSON schema drifted from %s; if intended, bump ReportSchemaVersion and rerun with -update\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

func TestRunFormatJSONCarriesSchemaVersion(t *testing.T) {
	var buf bytes.Buffer
	if _, err := RunFormat("^E5-thm7$", &buf, FormatJSON); err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("output is not a Report document: %v", err)
	}
	if report.SchemaVersion != ReportSchemaVersion {
		t.Errorf("schema_version = %d, want %d", report.SchemaVersion, ReportSchemaVersion)
	}
	if len(report.Tables) == 0 {
		t.Error("report has no tables")
	}
}

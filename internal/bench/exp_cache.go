package bench

import (
	"fmt"

	"pdmdict/internal/btree"
	"pdmdict/internal/cache"
	"pdmdict/internal/core"
	"pdmdict/internal/pdm"
	"pdmdict/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E11-seqcache",
		Title: "§1.2 nuance: caching rescues B-trees for sequential scans, not random access",
		Run:   runSeqCache,
	})
}

// runSeqCache reproduces the paper's full Section 1.2 argument: "the
// above justification applies only to random accesses, since for
// sequential scanning of large files, the overhead of B-trees is
// negligible (due to caching)". A B-tree behind a small LRU block cache
// reads a sequentially-scanned file at far below 1 I/O per block (the
// path and leaf stay cached), while random access defeats the cache —
// and that is exactly the regime where the 1-I/O dictionary matters.
func runSeqCache() []Table {
	t := Table{
		ID:      "E11-seqcache",
		Title:   "file of 64-block records, d=12, B=64, cache = 64 blocks",
		Columns: []string{"structure", "access pattern", "reads", "avg I/Os per read", "cache hit rate"},
	}
	d, b := 12, 64
	files, blocksPerFile := 256, 64
	keys := workload.FileSystemKeys(files, blocksPerFile)
	n := len(keys)

	sequential := keys // in (inode, block#) order: a file-by-file scan
	// Uniform random accesses: the adversary of any cache whose capacity
	// is far below the data size.
	random := make([]pdm.Word, n)
	perm := workload.Uniform(n, 1<<62, 201) // seed material
	for i := range random {
		random[i] = keys[int(perm[i]%uint64(n))]
	}

	type result struct {
		name, pattern string
		reads         int
		avg           float64
		hitRate       string
	}
	var results []result

	runBTree := func(pattern string, accesses []pdm.Word, cacheBlocks int) {
		m := newMachine(pdm.Config{D: d, B: b})
		var store btree.Storage = m
		var cc *cache.Cache
		name := "B-tree (no cache)"
		if cacheBlocks > 0 {
			cc = cache.New(m, cacheBlocks)
			store = cc
			name = fmt.Sprintf("B-tree + %d-block cache", cacheBlocks)
		}
		tr, err := btree.New(store, btree.Config{SatWords: 1})
		if err != nil {
			panic(err)
		}
		for _, k := range keys {
			if err := tr.Insert(k, []pdm.Word{1}); err != nil {
				panic(err)
			}
		}
		m.ResetStats()
		for _, k := range accesses {
			if !tr.Contains(k) {
				panic("bench: btree key lost")
			}
		}
		hitRate := "-"
		if cc != nil {
			_, _, rate := cc.HitRate()
			hitRate = fmt.Sprintf("%.3f", rate)
		}
		results = append(results, result{name, pattern, len(accesses),
			float64(m.Stats().ParallelIOs) / float64(len(accesses)), hitRate})
	}

	runDict := func(pattern string, accesses []pdm.Word) {
		m := newMachine(pdm.Config{D: d, B: b})
		bd, err := core.NewBasic(m, core.BasicConfig{Capacity: n, SatWords: 1, Seed: 202})
		if err != nil {
			panic(err)
		}
		for _, k := range keys {
			if err := bd.Insert(k, []pdm.Word{1}); err != nil {
				panic(err)
			}
		}
		m.ResetStats()
		for _, k := range accesses {
			if !bd.Contains(k) {
				panic("bench: dict key lost")
			}
		}
		results = append(results, result{"§4.1 dictionary", pattern, len(accesses),
			float64(m.Stats().ParallelIOs) / float64(len(accesses)), "-"})
	}

	runBTree("sequential scan", sequential, 0)
	runBTree("sequential scan", sequential, 64)
	runDict("sequential scan", sequential)
	runBTree("random (uniform)", random, 0)
	runBTree("random (uniform)", random, 64)
	runDict("random (uniform)", random)

	for _, r := range results {
		t.AddRow(r.name, r.pattern, r.reads, r.avg, r.hitRate)
	}
	t.Notes = append(t.Notes,
		"sequential: the cached B-tree approaches ~1/leaf-capacity I/Os per read — 'negligible overhead' as the paper says; random: the cache barely helps and the dictionary's flat 1 I/O wins",
		"the dictionary needs no cache at all: its single probe is already optimal for the random workloads file servers actually face")
	return []Table{t}
}

package bench

import (
	"fmt"
	"math/rand"

	"pdmdict/internal/core"
	"pdmdict/internal/expander"
	"pdmdict/internal/explicit"
	"pdmdict/internal/loadbalance"
	"pdmdict/internal/pdm"
)

func init() {
	register(Experiment{
		ID:    "E2-lemma3",
		Title: "Lemma 3: deterministic load balancing max load vs the analytic bound",
		Run:   runLemma3,
	})
}

func runLemma3() []Table {
	t := Table{
		ID:      "E2-lemma3",
		Title:   "greedy d-choice on a verified expander family, heavily loaded case",
		Columns: []string{"d", "k", "v", "n", "avg load", "max load", "Lemma 3 bound", "holds", "2-choice max", "1-choice max"},
	}
	u := uint64(1) << 44
	for _, d := range []int{8, 16, 32} {
		for _, k := range []int{1, d / 2} {
			v := 1024 * d / 8 // scale buckets with degree
			stripe := v / d
			n := 8 * v / k // average load 8
			s := expander.SampleSet(u, n, rand.New(rand.NewSource(int64(d*100+k))))

			bal := loadbalance.New(expander.NewFamily(u, d, stripe, uint64(d)), k)
			max := bal.PlaceAll(s)
			bound := loadbalance.Lemma3Bound(n, v, d, k, 0.25, 0.5)

			two := loadbalance.New(expander.NewUnstriped(u, 2, v, uint64(d)+7), 1)
			one := loadbalance.New(expander.NewUnstriped(u, 1, v, uint64(d)+9), 1)
			maxTwo := two.PlaceAll(s)
			maxOne := one.PlaceAll(s)

			t.AddRow(d, k, v, n, bal.AverageLoad(), max, bound,
				fmt.Sprint(float64(max) <= bound), maxTwo, maxOne)
		}
	}
	t.Notes = append(t.Notes,
		"Lemma 3 bound evaluated at (ε,δ) = (1/4, 1/2); the greedy max load sits near the average plus a small additive term",
		"the 2-choice and 1-choice rows are the Azar et al. [2] baselines run on the same key sequence")
	return []Table{t}
}

func init() {
	register(Experiment{
		ID:    "E3-unique",
		Title: "Lemmas 4 & 5: unique-neighbor mass Φ(S) and the well-covered fraction S′",
		Run:   runUnique,
	})
}

func runUnique() []Table {
	t := Table{
		ID:      "E3-unique",
		Title:   "measured vs bound, λ = 1/3, v = 6·n·d (the ε = 1/12 regime)",
		Columns: []string{"n", "d", "measured ε", "Φ/(dn)", "Lemma4 bound (1−2ε)", "|S′|/n", "Lemma5 bound (1−2ε/λ)"},
	}
	u := uint64(1) << 44
	lambda := 1.0 / 3
	for _, n := range []int{256, 1024, 4096} {
		d := 12
		g := expander.NewFamily(u, d, 6*n, uint64(n))
		s := expander.SampleSet(u, n, rand.New(rand.NewSource(int64(n))))
		eps := expander.EpsilonOf(g, s)
		st := expander.UniqueNeighborStats(g, s, lambda)
		t.AddRow(n, d, eps,
			float64(st.Phi)/float64(d*n), 1-2*eps,
			float64(st.WellCovered)/float64(n), 1-2*eps/lambda)
	}
	t.Notes = append(t.Notes,
		"both lemmas are inequalities: the measured ratios must dominate (and do dominate) their bounds")

	// The Theorem 6(b) soundness margin: majority decoding needs every
	// key pair to share fewer than d/2 neighbors.
	common := Table{
		ID:      "E3-unique",
		Title:   "pairwise common neighbors (majority-decoding soundness, §4.2)",
		Columns: []string{"n", "d", "pairs sampled", "max common", "majority threshold d/2"},
	}
	for _, n := range []int{256, 4096} {
		d := 12
		g := expander.NewFamily(u, d, 6*n, uint64(n))
		common.AddRow(n, d, 3000, expander.MaxPairwiseCommon(g, 3000, int64(n)), d/2)
	}
	common.Notes = append(common.Notes,
		"the paper: 'no two keys from U can have more than εd common neighbors. Therefore, we know that the collected data belongs to x — there is no need for an additional comparison'")
	return []Table{t, common}
}

func init() {
	register(Experiment{
		ID:    "E6-explicit",
		Title: "Section 5: semi-explicit telescope construction vs the seeded family",
		Run:   runExplicit,
	})
}

func runExplicit() []Table {
	t := Table{
		ID:      "E6-explicit",
		Title:   "Theorem 12 instances (N=32, target ε=0.4)",
		Columns: []string{"u", "γ", "levels", "degree", "memory (words)", "sampled ε", "v"},
	}
	for _, cfg := range []struct {
		u     uint64
		gamma float64
	}{
		{1 << 20, 0.4},
		{1 << 20, 0.6},
		{1 << 24, 0.5},
	} {
		semi, err := explicit.Construct(explicit.SemiConfig{
			U: cfg.u, N: 32, Eps: 0.4, Gamma: cfg.gamma, DegreePerLevel: 6, Seed: uint64(cfg.u),
		})
		if err != nil {
			t.AddRow(cfg.u, cfg.gamma, "-", "-", "-", fmt.Sprintf("failed: %v", err), "-")
			continue
		}
		rep := expander.EstimateExpansion(semi.Graph, []int{2, 8, 32}, 10, int64(cfg.u))
		t.AddRow(cfg.u, cfg.gamma, semi.Levels, semi.Graph.Degree(), semi.MemoryWords,
			rep.WorstEpsilon, semi.Graph.RightSize())
	}

	// Reference: the seeded family the dictionaries default to.
	ref := Table{
		ID:      "E6-explicit",
		Title:   "reference: seeded hash family (the paper's Open Problems conjecture)",
		Columns: []string{"u", "d", "memory (words)", "sampled ε", "v"},
	}
	for _, u := range []uint64{1 << 20, 1 << 24} {
		g := expander.NewFamily(u, 12, 6*32, uint64(u)+1)
		rep := expander.EstimateExpansion(g, []int{2, 8, 32}, 10, int64(u))
		ref.AddRow(u, 12, 1, rep.WorstEpsilon, g.RightSize())
	}
	ref.Notes = append(ref.Notes,
		"telescope degree grows as DegreePerLevel^levels = polylog(u) (Theorem 12), memory O(N^β); the family needs O(1) memory and degree O(log u) but carries no worst-case proof")
	return []Table{t, ref}
}

func init() {
	register(Experiment{
		ID:    "A1-ablate-striping",
		Title: "ablation: striped expander vs unstriped on PDM vs disk-head model (§5 end)",
		Run:   runAblateStriping,
	})
}

func runAblateStriping() []Table {
	t := Table{
		ID:      "A1-ablate-striping",
		Title:   "cost of one neighborhood probe (d blocks) under each graph/machine combination",
		Columns: []string{"graph", "machine", "avg I/Os per probe", "max", "space factor"},
	}
	u := uint64(1) << 40
	d, b, stripe := 16, 16, 512
	probes := expander.SampleSet(u, 400, rand.New(rand.NewSource(71)))

	probeCost := func(g expander.Graph, model pdm.Model, mapAddr func(y int) pdm.Addr) (float64, int64) {
		m := newMachine(pdm.Config{D: d, B: b, Model: model})
		var mt meter
		buf := make([]int, 0, g.Degree())
		for _, x := range probes {
			buf = g.Neighbors(x, buf[:0])
			addrs := make([]pdm.Addr, len(buf))
			for i, y := range buf {
				addrs[i] = mapAddr(y)
			}
			before := m.Stats().ParallelIOs
			m.BatchRead(addrs)
			mt.add(m.Stats().ParallelIOs - before)
		}
		return mt.avg(), mt.max()
	}

	striped := expander.NewFamily(u, d, stripe, 72)
	unstriped := expander.NewUnstriped(u, d, d*stripe, 72)
	trivial := explicit.NewTrivialStripe(unstriped)

	// Striped graph on PDM: stripe i → disk i.
	avg, max := probeCost(striped, pdm.ParallelDisk, func(y int) pdm.Addr {
		return pdm.Addr{Disk: y / stripe, Block: y % stripe}
	})
	t.AddRow("striped family", "parallel disk", avg, max, "1×")

	// Unstriped graph on PDM: right vertices land on arbitrary disks →
	// per-disk conflicts.
	avg, max = probeCost(unstriped, pdm.ParallelDisk, func(y int) pdm.Addr {
		return pdm.Addr{Disk: y % d, Block: y / d}
	})
	t.AddRow("unstriped", "parallel disk", avg, max, "1×")

	// Unstriped graph on the disk-head model: any d blocks in one step.
	avg, max = probeCost(unstriped, pdm.DiskHead, func(y int) pdm.Addr {
		return pdm.Addr{Disk: y % d, Block: y / d}
	})
	t.AddRow("unstriped", "disk-head", avg, max, "1×")

	// Trivially striped copy (factor-d space) back on PDM.
	avg, max = probeCost(trivial, pdm.ParallelDisk, func(y int) pdm.Addr {
		return pdm.Addr{Disk: y / trivial.StripeSize(), Block: y % trivial.StripeSize()}
	})
	t.AddRow("trivially striped copy", "parallel disk", avg, max, fmt.Sprintf("%d×", d))

	t.Notes = append(t.Notes,
		"the paper's Section 5 trade-off: unstriped graphs need either the (stronger) disk-head model or a factor-d space blowup to regain 1-I/O probes on the parallel disk model")

	// The same trade-off measured end to end through the §4.1 dictionary.
	dict := Table{
		ID:      "A1-ablate-striping",
		Title:   "the §4.1 dictionary itself under each graph/machine combination (n=400)",
		Columns: []string{"graph layout", "machine", "lookup avg I/Os", "lookup worst"},
	}
	n := 400
	keys := expander.SampleSet(1<<44, n, rand.New(rand.NewSource(73)))
	runDict := func(name string, model pdm.Model, headMode bool) {
		m := newMachine(pdm.Config{D: 12, B: 64, Model: model})
		bd, err := core.NewBasic(m, core.BasicConfig{Capacity: n, SatWords: 1, HeadModel: headMode, Seed: 74})
		if err != nil {
			panic(err)
		}
		for _, k := range keys {
			if err := bd.Insert(pdm.Word(k), []pdm.Word{1}); err != nil {
				panic(err)
			}
		}
		var mt meter
		for _, k := range keys {
			before := m.Stats().ParallelIOs
			if !bd.Contains(pdm.Word(k)) {
				panic("bench: key lost")
			}
			mt.add(m.Stats().ParallelIOs - before)
		}
		dict.AddRow(name, model.String(), mt.avg(), mt.max())
	}
	runDict("striped family", pdm.ParallelDisk, false)
	runDict("unstriped (round-robin)", pdm.ParallelDisk, true)
	runDict("unstriped (round-robin)", pdm.DiskHead, true)
	dict.Notes = append(dict.Notes,
		"§5: 'If we implement the described dictionaries in the parallel disk head model, we do not need the striped property' — the one-probe guarantee returns on the head machine without striping")
	return []Table{t, dict}
}

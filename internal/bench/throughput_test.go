package bench

import "testing"

func TestRunThroughputSmall(t *testing.T) {
	res, err := RunThroughput(ThroughputConfig{
		Clients:   4,
		TotalOps:  200,
		Keys:      256,
		TimeScale: 1 << 40, // pacing sleeps round to zero: keep the test fast
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 200 {
		t.Errorf("Ops = %d, want 200", res.Ops)
	}
	if res.Lookups+res.Inserts != res.Ops {
		t.Errorf("lookups %d + inserts %d != ops %d", res.Lookups, res.Inserts, res.Ops)
	}
	if res.WallOpsPerSec <= 0 || res.ModeledOpsPerSec <= 0 {
		t.Errorf("non-positive rates: %+v", res)
	}
	// Read-heavy means mostly lookups even on a short run.
	if res.Lookups < res.Inserts {
		t.Errorf("read-heavy run did %d lookups vs %d inserts", res.Lookups, res.Inserts)
	}
}

func TestThroughputTableRejectsBadConfig(t *testing.T) {
	if _, _, err := ThroughputTable(ThroughputConfig{ReadFrac: 2}, []int{1}); err == nil {
		t.Fatal("ReadFrac 2 accepted")
	}
	if _, err := RunThroughput(ThroughputConfig{Clients: 0}); err == nil {
		t.Fatal("Clients 0 accepted")
	}
}

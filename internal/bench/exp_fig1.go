package bench

import (
	"fmt"

	"pdmdict/internal/core"
	"pdmdict/internal/hashing"
	"pdmdict/internal/pdm"
	"pdmdict/internal/workload"
)

// runner adapts any dictionary to the measurement loop.
type runner struct {
	name    string
	insert  func(k pdm.Word, sat []pdm.Word) error
	lookup  func(k pdm.Word) bool
	cost    func() int64
	detOps  string // worst-case guarantee class ("det" or "rand")
	bwWords int    // satellite words retrievable at the 1-I/O lookup cost
}

// measure drives inserts then lookups (hits and misses), returning the
// per-phase meters.
func measure(r runner, keys []pdm.Word, satWords int) (ins, hit, miss meter) {
	sat := make([]pdm.Word, satWords)
	for i := range sat {
		sat[i] = pdm.Word(i + 1)
	}
	for _, k := range keys {
		before := r.cost()
		if err := r.insert(k, sat); err != nil {
			panic(fmt.Sprintf("bench: %s: insert: %v", r.name, err))
		}
		ins.add(r.cost() - before)
	}
	for _, k := range keys {
		before := r.cost()
		if !r.lookup(k) {
			panic(fmt.Sprintf("bench: %s: lost key %d", r.name, k))
		}
		hit.add(r.cost() - before)
	}
	for i, k := range keys {
		before := r.cost()
		if r.lookup(k | 1<<55) {
			panic(fmt.Sprintf("bench: %s: phantom key", r.name))
		}
		miss.add(r.cost() - before)
		if i == len(keys)/4 {
			break
		}
	}
	return ins, hit, miss
}

// fig1Runners builds one runner per Figure 1 row on fresh machines.
func fig1Runners(n, d, b, satWords int, seed uint64) []runner {
	var rs []runner
	sw := d * b // one table's stripe width in words

	{ // [7]: bucketed hashing, Θ(log n) buckets — O(1) whp.
		m := newMachine(pdm.Config{D: d, B: b})
		t, err := hashing.NewTable(m, hashing.DGMConfig(n, satWords, seed))
		if err != nil {
			panic(err)
		}
		rs = append(rs, runner{
			name:   "[7] hashing (DGM-style)",
			insert: t.Insert,
			lookup: t.Contains,
			cost:   func() int64 { return m.Stats().ParallelIOs },
			detOps: "rand",
		})
	}
	{ // Section 4.1 BasicDict, k = 1.
		m := newMachine(pdm.Config{D: d, B: b})
		bd, err := core.NewBasic(m, core.BasicConfig{Capacity: n, SatWords: satWords, Seed: seed})
		if err != nil {
			panic(err)
		}
		rs = append(rs, runner{
			name:    "§4.1 basic (k=1)",
			insert:  bd.Insert,
			lookup:  bd.Contains,
			cost:    func() int64 { return m.Stats().ParallelIOs },
			detOps:  "det",
			bwWords: sw / log2(n),
		})
	}
	{ // Cuckoo hashing [13].
		m := newMachine(pdm.Config{D: d, B: b})
		c, err := hashing.NewCuckoo(m, hashing.CuckooConfig{Capacity: n, SatWords: satWords, Seed: seed})
		if err != nil {
			panic(err)
		}
		rs = append(rs, runner{
			name:    "[13] cuckoo",
			insert:  c.Insert,
			lookup:  c.Contains,
			cost:    func() int64 { return m.Stats().ParallelIOs },
			detOps:  "rand",
			bwWords: sw / 2,
		})
	}
	{ // [7] + trick.
		m := newMachine(pdm.Config{D: d, B: b})
		tl, err := hashing.NewTwoLevel(m, hashing.TwoLevelConfig{Capacity: n, SatWords: satWords, Seed: seed})
		if err != nil {
			panic(err)
		}
		rs = append(rs, runner{
			name:    "[7]+trick two-level",
			insert:  tl.Insert,
			lookup:  tl.Contains,
			cost:    func() int64 { return m.Stats().ParallelIOs },
			detOps:  "rand",
			bwWords: sw,
		})
	}
	{ // Section 4.3 dynamic cascade (on 2d disks, like the paper's 2d).
		m := newMachine(pdm.Config{D: 2 * d, B: b})
		dd, err := core.NewDynamic(m, core.DynamicConfig{Capacity: n, SatWords: satWords, Seed: seed})
		if err != nil {
			panic(err)
		}
		rs = append(rs, runner{
			name:    "§4.3 dynamic (ɛ=0.5)",
			insert:  dd.Insert,
			lookup:  dd.Contains,
			cost:    func() int64 { return m.Stats().ParallelIOs },
			detOps:  "det",
			bwWords: sw,
		})
	}
	return rs
}

func log2(n int) int {
	l := 1
	for v := 2; v < n; v <<= 1 {
		l++
	}
	return l
}

func init() {
	register(Experiment{
		ID:    "E1-fig1",
		Title: "Figure 1: linear-space dictionaries, measured lookup/update I/Os and bandwidth",
		Run:   runFig1,
	})
}

func runFig1() []Table {
	n, d, b, satWords := 4096, 20, 64, 2
	keys := workload.Uniform(n, 1<<44, 41)
	t := Table{
		ID:    "E1-fig1",
		Title: fmt.Sprintf("n=%d, d=%d, B=%d, satellite=%d words", n, d, b, satWords),
		Columns: []string{"method", "lookup avg", "lookup worst", "update avg", "update worst",
			"bandwidth (words @1 I/O)", "guarantee"},
	}
	for _, r := range fig1Runners(n, d, b, satWords, 42) {
		ins, hit, _ := measure(r, keys, satWords)
		bw := "-"
		if r.bwWords > 0 {
			bw = fmt.Sprint(r.bwWords)
		}
		t.AddRow(r.name, hit.avg(), hit.max(), ins.avg(), ins.max(), bw, r.detOps)
		t.AddHist(r.name+" lookup", hit.costs)
		t.AddHist(r.name+" insert", ins.costs)
	}
	t.Notes = append(t.Notes,
		"paper's Figure 1: hashing rows hold whp/amortized; §4.1 and §4.3 rows are deterministic worst-case",
		"unsuccessful searches cost exactly 1 I/O for §4.1, §4.3, and cuckoo (verified in package tests)")
	return []Table{t}
}

func init() {
	register(Experiment{
		ID:    "E7-tails",
		Title: "worst-case tails: adversarial keys vs deterministic guarantees (§1.1 motivation)",
		Run:   runTails,
	})
}

func runTails() []Table {
	// Small blocks so bucket capacity is realistic relative to n — the
	// regime where an adversarial key set actually builds chains.
	n, d, b := 2048, 20, 8
	t := Table{
		ID:      "E7-tails",
		Title:   fmt.Sprintf("per-operation parallel I/O distribution, n=%d", n),
		Columns: []string{"method", "workload", "insert avg", "insert p99.9", "insert max", "lookup avg", "lookup max"},
	}

	run := func(name, wl string, keys []pdm.Word, mk func() runner) {
		r := mk()
		ins, hit, _ := measure(r, keys, 0)
		t.AddRow(name, wl, ins.avg(), ins.percentile(0.999), ins.max(), hit.avg(), hit.max())
		t.AddHist(name+" "+wl+" insert", ins.costs)
		t.AddHist(name+" "+wl+" lookup", hit.costs)
	}

	uniform := workload.Uniform(n, 1<<44, 51)

	// Adversarial set: keys that all collide under the hash table's
	// bucket function. The SAME keys are fed to the deterministic
	// dictionary — an adversary who knows the (deterministic) structure
	// still cannot hurt it beyond its worst-case bound.
	seedTable := func() (*hashing.Table, *pdm.Machine) {
		m := newMachine(pdm.Config{D: d, B: b})
		tab, err := hashing.NewTable(m, hashing.TableConfig{Capacity: n, Seed: 52})
		if err != nil {
			panic(err)
		}
		return tab, m
	}
	probe, _ := seedTable()
	adversarial := workload.CollidingKeys(probe.BucketOf, 7, n, 1<<44, 53)

	mkTable := func() runner {
		tab, m := seedTable()
		return runner{name: "hash table", insert: tab.Insert, lookup: tab.Contains,
			cost: func() int64 { return m.Stats().ParallelIOs }}
	}
	mkBasic := func() runner {
		m := newMachine(pdm.Config{D: d, B: b})
		bd, err := core.NewBasic(m, core.BasicConfig{Capacity: n, Seed: 54})
		if err != nil {
			panic(err)
		}
		return runner{name: "§4.1 basic", insert: bd.Insert, lookup: bd.Contains,
			cost: func() int64 { return m.Stats().ParallelIOs }}
	}
	mkDyn := func() runner {
		m := newMachine(pdm.Config{D: 2 * d, B: b})
		dd, err := core.NewDynamic(m, core.DynamicConfig{Capacity: n, Seed: 55})
		if err != nil {
			panic(err)
		}
		return runner{name: "§4.3 dynamic", insert: dd.Insert, lookup: dd.Contains,
			cost: func() int64 { return m.Stats().ParallelIOs }}
	}

	run("hash table [7]-style", "uniform", uniform, mkTable)
	run("hash table [7]-style", "adversarial", adversarial, mkTable)
	run("§4.1 basic", "uniform", uniform, mkBasic)
	run("§4.1 basic", "adversarial", adversarial, mkBasic)
	run("§4.3 dynamic", "uniform", uniform, mkDyn)
	run("§4.3 dynamic", "adversarial", adversarial, mkDyn)

	t.Notes = append(t.Notes,
		"adversarial = keys brute-forced to collide under the hash table's function; the hash table degenerates to a chain while the deterministic structures keep their worst-case bounds",
		"paper §1.1: 'all hashing based dictionaries we are aware of may use n/B^O(1) I/Os for a single operation in the worst case'")
	return []Table{t}
}

func init() {
	register(Experiment{
		ID:    "E9-bandwidth",
		Title: "bandwidth: satellite words retrievable in one parallel I/O (Figure 1 column)",
		Run:   runBandwidth,
	})
}

func runBandwidth() []Table {
	n, d, b := 512, 20, 64
	sw := d * b
	t := Table{
		ID:      "E9-bandwidth",
		Title:   fmt.Sprintf("measured lookup I/Os as satellite size grows (d=%d, B=%d, B·D=%d words)", d, b, sw),
		Columns: []string{"method", "σ (words)", "lookup avg I/Os", "claimed bandwidth"},
	}
	sigmas := []int{1, 8, 32, 64, 128, 256}
	for _, sigma := range sigmas {
		keys := workload.Uniform(n, 1<<40, int64(60+sigma))

		// §4.1 with k = d/2: bandwidth O(BD/log n).
		if sigma <= sw/2/log2(n)*d/2 { // conservative feasibility guard
			m := newMachine(pdm.Config{D: d, B: b})
			bd, err := core.NewBasic(m, core.BasicConfig{Capacity: n, SatWords: sigma, K: d / 2, Seed: 61})
			if err == nil {
				r := runner{insert: bd.Insert, lookup: bd.Contains,
					cost: func() int64 { return m.Stats().ParallelIOs }}
				_, hit, _ := measure(r, keys, sigma)
				t.AddRow("§4.1 (k=d/2)", sigma, hit.avg(), fmt.Sprintf("O(BD/log n) = %d", sw/log2(n)))
			}
		}
		// Cuckoo: bandwidth BD/2.
		if 2+sigma <= sw/2 {
			m := newMachine(pdm.Config{D: d, B: b})
			c, err := hashing.NewCuckoo(m, hashing.CuckooConfig{Capacity: n, SatWords: sigma, Seed: 62})
			if err == nil {
				r := runner{insert: c.Insert, lookup: c.Contains,
					cost: func() int64 { return m.Stats().ParallelIOs }}
				_, hit, _ := measure(r, keys, sigma)
				t.AddRow("[13] cuckoo", sigma, hit.avg(), fmt.Sprintf("BD/2 = %d", sw/2))
			}
		}
		// §4.3 dynamic: bandwidth O(BD) at 1+ɛ average.
		{
			m := newMachine(pdm.Config{D: 2 * d, B: b})
			dd, err := core.NewDynamic(m, core.DynamicConfig{Capacity: n, SatWords: sigma, Seed: 63})
			if err == nil {
				r := runner{insert: dd.Insert, lookup: dd.Contains,
					cost: func() int64 { return m.Stats().ParallelIOs }}
				_, hit, _ := measure(r, keys, sigma)
				t.AddRow("§4.3 dynamic", sigma, hit.avg(), fmt.Sprintf("O(BD) = %d", sw))
			}
		}
		// [7]+trick: bandwidth O(BD) at 1+ɛ average.
		if 2+sigma <= sw {
			m := newMachine(pdm.Config{D: d, B: b})
			tl, err := hashing.NewTwoLevel(m, hashing.TwoLevelConfig{Capacity: n, SatWords: sigma, Seed: 64})
			if err == nil {
				r := runner{insert: tl.Insert, lookup: tl.Contains,
					cost: func() int64 { return m.Stats().ParallelIOs }}
				_, hit, _ := measure(r, keys, sigma)
				t.AddRow("[7]+trick", sigma, hit.avg(), fmt.Sprintf("O(BD) = %d", sw))
			}
		}
	}
	t.Notes = append(t.Notes,
		"a method appears at σ only if its layout admits that satellite size; the bandwidth ranking BD/log n < BD/2 < BD matches Figure 1")
	return []Table{t}
}

package bench

import (
	"pdmdict/internal/btree"
	"pdmdict/internal/bucket"
	"pdmdict/internal/core"
	"pdmdict/internal/hashing"
	"pdmdict/internal/pdm"
	"pdmdict/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E13-space",
		Title: "linear space: allocated words per stored key across structures",
		Run:   runSpace,
	})
}

// runSpace checks the claim stated for every structure in the paper —
// "All of our dictionaries use linear space" — by measuring the
// words-per-key actually materialized on the simulated disks, across a
// size sweep. Linear space means the column is flat in n; the constants
// differ per structure exactly as the theorems' space expressions say
// (e.g. Theorem 6(b) pays O(log u/ log n + σ/d) extra words per key in
// field granularity).
func runSpace() []Table {
	t := Table{
		ID:      "E13-space",
		Title:   "allocated words per key (d=14, B=64, σ=2 words; key+σ = 3 words payload)",
		Columns: []string{"n", "§4.1 basic", "§4.2 static (b)", "§4.3 dynamic", "hash table", "B-tree"},
	}
	d, b, sigma := 14, 64, 2
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
		keys := workload.Uniform(n, 1<<44, int64(n)+7)
		sat := make([]pdm.Word, sigma)
		row := []interface{}{n}
		perKey := func(m *pdm.Machine) float64 {
			return float64(m.TotalBlocks()*b) / float64(n)
		}

		{
			m := newMachine(pdm.Config{D: d, B: b})
			bd, err := core.NewBasic(m, core.BasicConfig{Capacity: n, SatWords: sigma, Seed: 501})
			if err != nil {
				panic(err)
			}
			for _, k := range keys {
				if err := bd.Insert(k, sat); err != nil {
					panic(err)
				}
			}
			// Charge the whole bucket array, not just touched blocks.
			row = append(row, float64(bd.BlocksPerDisk()*d*b)/float64(n))
		}
		{
			m := newMachine(pdm.Config{D: d, B: b})
			recs := makeStaticRecords(keys, sigma)
			sd, err := core.BuildStatic(m, core.StaticConfig{SatWords: sigma, Seed: 502}, recs)
			if err != nil {
				panic(err)
			}
			row = append(row, float64(sd.BlocksPerDisk()*d*b)/float64(n))
		}
		{
			m := newMachine(pdm.Config{D: 2 * d, B: b})
			dd, err := core.NewDynamic(m, core.DynamicConfig{Capacity: n, SatWords: sigma, Epsilon: 0.9, Seed: 503})
			if err != nil {
				panic(err)
			}
			for _, k := range keys {
				if err := dd.Insert(k, sat); err != nil {
					panic(err)
				}
			}
			row = append(row, float64(dd.BlocksPerDisk()*2*d*b)/float64(n))
		}
		{
			m := newMachine(pdm.Config{D: d, B: b})
			tab, err := hashing.NewTable(m, hashing.TableConfig{Capacity: n, SatWords: sigma, Seed: 504})
			if err != nil {
				panic(err)
			}
			for _, k := range keys {
				if err := tab.Insert(k, sat); err != nil {
					panic(err)
				}
			}
			row = append(row, perKey(m))
		}
		{
			m := newMachine(pdm.Config{D: d, B: b})
			tr, err := btree.New(m, btree.Config{SatWords: sigma})
			if err != nil {
				panic(err)
			}
			for _, k := range keys {
				if err := tr.Insert(k, sat); err != nil {
					panic(err)
				}
			}
			row = append(row, perKey(m))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"every column is flat in n — linear space, as the paper claims for all its dictionaries; the constants order as the theorems' space terms predict (field arrays cost more than packed hash stripes, the §4.3 cascade doubles the disks)",
		"dictionary columns charge the full reserved arrays (the structures' committed footprint), not just touched blocks")
	return []Table{t}
}

// makeStaticRecords adapts a key list for BuildStatic.
func makeStaticRecords(keys []pdm.Word, sigma int) []bucket.Record {
	recs := make([]bucket.Record, len(keys))
	for i, k := range keys {
		sat := make([]pdm.Word, sigma)
		for j := range sat {
			sat[j] = k + pdm.Word(j)
		}
		recs[i] = bucket.Record{Key: k, Sat: sat}
	}
	return recs
}

package bench

import "testing"

// TestSchedBenchImproves is the acceptance property of the scheduler
// experiment in miniature: at several concurrent clients, coalesced
// lookups must cost strictly fewer modeled steps per op than direct
// ones, and exact accounting must cover every submitted op.
func TestSchedBenchImproves(t *testing.T) {
	cfg := SchedBenchConfig{OpsPerClient: 60, Seed: 5}
	tbl, results, err := SchedTable(cfg, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || len(results) != 2 {
		t.Fatalf("rows %d results %d, want 2 each", len(tbl.Rows), len(results))
	}
	for _, r := range results {
		if r.OpsAccounted != r.Ops {
			t.Fatalf("clients=%d: ops_accounted %d != ops %d", r.Clients, r.OpsAccounted, r.Ops)
		}
		if r.DirectSteps <= 0 || r.SchedSteps <= 0 {
			t.Fatalf("clients=%d: non-positive step totals %d/%d", r.Clients, r.DirectSteps, r.SchedSteps)
		}
	}
	r8 := results[1]
	if r8.SchedStepsPerOp >= r8.DirectStepsPerOp {
		t.Fatalf("8 clients: scheduled %.3f steps/op not below direct %.3f",
			r8.SchedStepsPerOp, r8.DirectStepsPerOp)
	}
	if r8.RoundsShared < 2 {
		t.Fatalf("8 clients: coalescing factor %.1f below 2", r8.RoundsShared)
	}
}

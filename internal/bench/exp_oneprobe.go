package bench

import (
	"fmt"

	"pdmdict/internal/core"
	"pdmdict/internal/pdm"
	"pdmdict/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "A4-oneprobe",
		Title: "Section 6 exploration: one-probe full-bandwidth dynamic dictionary",
		Run:   runOneProbe,
	})
}

// runOneProbe compares the Section 6 structure (levels on disjoint disk
// groups) against the Theorem 7 cascade, at equal key counts, reporting
// the trade: exact 1/2-I/O operations and full bandwidth versus
// (levels+1)/2 times the disks.
func runOneProbe() []Table {
	t := Table{
		ID:    "A4-oneprobe",
		Title: "n=2048, d=14, B=64, σ=8 words",
		Columns: []string{"structure", "disks", "lookup avg", "lookup worst", "update avg",
			"update worst", "deep keys", "space (blocks/disk)"},
	}
	n, d, b, sigma := 2048, 14, 64, 8
	keys := workload.Uniform(n, 1<<44, 301)
	sat := make([]pdm.Word, sigma)
	for i := range sat {
		sat[i] = pdm.Word(i)
	}

	deepOf := func(counts []int) int {
		deep := 0
		for _, c := range counts[1:] {
			deep += c
		}
		return deep
	}

	{ // Theorem 7 cascade (2d disks) with tight slack so deep keys exist.
		m := newMachine(pdm.Config{D: 2 * d, B: b})
		dd, err := core.NewDynamic(m, core.DynamicConfig{Capacity: n, SatWords: sigma, Epsilon: 0.9, Slack: 3, Seed: 302})
		if err != nil {
			panic(err)
		}
		var ins, hit meter
		for i, k := range keys {
			before := m.Stats().ParallelIOs
			if err := dd.Insert(k, sat); err != nil {
				panic(fmt.Sprintf("dynamic insert %d: %v", i, err))
			}
			ins.add(m.Stats().ParallelIOs - before)
		}
		for _, k := range keys {
			before := m.Stats().ParallelIOs
			if !dd.Contains(k) {
				panic("dynamic key lost")
			}
			hit.add(m.Stats().ParallelIOs - before)
		}
		t.AddRow("§4.3 dynamic", 2*d, hit.avg(), hit.max(), ins.avg(), ins.max(),
			deepOf(dd.LevelCounts()), dd.BlocksPerDisk())
	}
	{ // Section 6 one-probe (4d disks, 3 levels).
		m := newMachine(pdm.Config{D: 4 * d, B: b})
		op, err := core.NewOneProbe(m, core.OneProbeConfig{Capacity: n, SatWords: sigma, Slack: 3, Seed: 303})
		if err != nil {
			panic(err)
		}
		var ins, hit meter
		for i, k := range keys {
			before := m.Stats().ParallelIOs
			if err := op.Insert(k, sat); err != nil {
				panic(fmt.Sprintf("one-probe insert %d: %v", i, err))
			}
			ins.add(m.Stats().ParallelIOs - before)
		}
		for _, k := range keys {
			before := m.Stats().ParallelIOs
			if !op.Contains(k) {
				panic("one-probe key lost")
			}
			hit.add(m.Stats().ParallelIOs - before)
		}
		t.AddRow("§6 one-probe (c=3)", 4*d, hit.avg(), hit.max(), ins.avg(), ins.max(),
			deepOf(op.LevelCounts()), op.BlocksPerDisk())
	}
	t.Notes = append(t.Notes,
		"both structures are run with deliberately tight arrays (slack 3) so keys actually overflow to deeper levels; the cascade pays a second I/O for them while the one-probe structure's lookup worst stays 1 — at twice the disks",
		"the open problem's residue: the one-probe structure still fails (needs rebuild) when every level is congested, so its update time is non-constant in the worst case, exactly as §6 anticipates")
	return []Table{t}
}

package bench

import (
	"fmt"

	"pdmdict/internal/core"
	"pdmdict/internal/fault"
	"pdmdict/internal/pdm"
	"pdmdict/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E14-faults",
		Title: "robustness: degraded lookups under failed disks, transient-error retries, repair cost",
		Run:   runFaults,
	})
}

// runFaults measures what fault tolerance costs in the model's own
// currency. A k-replicated Section 4.1 dictionary keeps every lookup at
// one parallel I/O while up to k−1 disks are fail-stopped — the checked
// read path touches the same d buckets, so degradation shows up as lost
// answers (none, by construction) rather than extra I/Os. Transient
// errors DO inflate cost: each retry batch is an accounted parallel
// I/O. Repairing a replaced (wiped) disk from the surviving replicas is
// a scan: O(v/d) bucket reads across d−1 disks plus v/d bucket writes.
func runFaults() []Table {
	const (
		d, b = 12, 64
		n    = 1500
		seed = 303
	)
	lookups := Table{
		ID:    "E14-faults",
		Title: fmt.Sprintf("k-replicated §4.1 dictionary, d=%d, B=%d, n=%d: degraded lookups", d, b, n),
		Columns: []string{"replicas k", "failed disks", "lookups", "wrong/lost",
			"avg I/Os per lookup", "inflation vs healthy"},
	}
	transient := Table{
		ID:    "E14-faults-transient",
		Title: "same dictionary (k=2): transient read errors, retried up to 3 times",
		Columns: []string{"transient p", "lookups", "inconclusive",
			"avg I/Os per lookup", "inflation vs healthy"},
	}
	repairs := Table{
		ID:    "E14-faults-repair",
		Title: "disk replacement: wipe one disk, rebuild it from surviving replicas",
		Columns: []string{"replicas k", "wiped disk", "repair pIOs",
			"lookups wrong after repair", "scrub pIOs", "bad blocks after scrub"},
	}

	keys := workload.Uniform(n, 1<<62, seed)
	build := func(k int) (*pdm.Machine, *core.BasicDict, *fault.Plan) {
		m := newMachine(pdm.Config{D: d, B: b})
		bd, err := core.NewBasic(m, core.BasicConfig{
			Capacity: n, SatWords: 2, K: k, Replicate: true, Seed: seed,
		})
		if err != nil {
			panic(err)
		}
		for _, x := range keys {
			if err := bd.Insert(x, []pdm.Word{pdm.Word(k), x}); err != nil {
				panic(err)
			}
		}
		plan := fault.NewPlan(uint64(seed))
		m.SetFaultInjector(plan)
		return m, bd, plan
	}
	// sweep runs every key through the checked lookup path and counts
	// answers that are missing, wrong, or inconclusive.
	sweep := func(m *pdm.Machine, bd *core.BasicDict) (bad int, avg float64) {
		before := m.Stats().ParallelIOs
		for _, x := range keys {
			sat, ok, err := bd.LookupTry(x)
			if err != nil || !ok || sat[1] != x {
				bad++
			}
		}
		return bad, float64(m.Stats().ParallelIOs-before) / float64(n)
	}

	for _, k := range []int{2, 3} {
		m, bd, plan := build(k)
		var healthy float64
		for f := 0; f < k; f++ {
			plan.Reset()
			for disk := 0; disk < f; disk++ {
				plan.FailDisk(disk)
			}
			bad, avg := sweep(m, bd)
			if f == 0 {
				healthy = avg
			}
			lookups.AddRow(k, f, n, bad, avg, avg/healthy)
			if bad != 0 {
				panic(fmt.Sprintf("bench: %d lost lookups with %d of %d tolerated disks failed", bad, f, k-1))
			}
		}

		// Replacement: the worst-failed disk dies for good and comes back
		// blank; Repair rebuilds it from the other replica(s).
		plan.Reset()
		wiped := 0
		m.WipeDisk(wiped)
		before := m.Stats().ParallelIOs
		if err := bd.Repair(wiped); err != nil {
			panic(err)
		}
		repairCost := m.Stats().ParallelIOs - before
		bad, _ := sweep(m, bd)
		before = m.Stats().ParallelIOs
		mismatches := bd.Scrub()
		scrubCost := m.Stats().ParallelIOs - before
		repairs.AddRow(k, wiped, repairCost, bad, scrubCost, len(mismatches))
		if bad != 0 || len(mismatches) != 0 {
			panic("bench: repair left wrong lookups or checksum mismatches")
		}
	}

	// Transient errors: no data is at risk, but every retry batch is an
	// accounted parallel I/O, so cost inflates with p.
	{
		m, bd, plan := build(2)
		_, healthy := sweep(m, bd)
		for _, p := range []float64{0.01, 0.05, 0.20} {
			plan.Reset()
			plan.SetTransient(p)
			bad, avg := sweep(m, bd)
			transient.AddRow(p, n, bad, avg, avg/healthy)
		}
	}

	lookups.Notes = append(lookups.Notes,
		"replicate mode stores k full copies on k distinct stripes, so any k−1 fail-stop disks leave ≥1 readable copy of every record",
		"lookup cost stays flat under failures: the probe reads the same d buckets either way — tolerance is paid in space (k×), not I/Os")
	transient.Notes = append(transient.Notes,
		"a transient error fails only the probed block; LookupTry re-issues just the failed addresses, so inflation ≈ expected retry batches per lookup",
		"a lookup is inconclusive (never a false absence) only when every replica's bucket exhausts its retries — with k=2 that is ≈(p⁴)² per lookup, invisible even at p=0.20")
	repairs.Notes = append(repairs.Notes,
		"repair reads the surviving stripes row by row and rewrites the wiped disk's buckets in canonical order — bit-identical to the pre-failure layout",
		"a clean scrub (0 bad blocks) re-verifies every checksum and clears the machine's degraded flag")
	return []Table{lookups, transient, repairs}
}

package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every experiment in DESIGN.md's index must be registered.
	want := []string{
		"E1-fig1", "E2-lemma3", "E3-unique", "E4-thm6", "E5-thm7",
		"E6-explicit", "E7-tails", "E8-btree", "E9-bandwidth", "E10-rebuild",
		"E11-seqcache", "E12-scaling", "E13-space", "E14-faults",
		"A1-ablate-striping", "A2-ablate-cascade", "A3-ablate-k", "A4-oneprobe",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if got := len(Experiments()); got != len(want) {
		t.Errorf("%d experiments registered, want %d", got, len(want))
	}
}

func TestRunPatternErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Run("[", &buf, false); err == nil {
		t.Error("bad regexp accepted")
	}
	if _, err := Run("no-such-experiment", &buf, false); err == nil {
		t.Error("unmatched pattern accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		ID:      "X",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Notes:   []string{"hello"},
	}
	tab.AddRow("x", 1.5)
	tab.AddRow(42, "y")
	text := tab.Render()
	for _, want := range []string{"== X — demo ==", "1.500", "42", "note: hello"} {
		if !strings.Contains(text, want) {
			t.Errorf("Render missing %q:\n%s", want, text)
		}
	}
	md := tab.Markdown()
	for _, want := range []string{"### X — demo", "| a | b |", "| x | 1.500 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
	csv := tab.CSV()
	for _, want := range []string{"# X — demo", "a,b", "x,1.500", "42,y"} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV missing %q:\n%s", want, csv)
		}
	}
	// Quoting rules.
	q := Table{Columns: []string{"c"}, ID: "Q", Title: "q"}
	q.AddRow(`he said "hi", twice`)
	if !strings.Contains(q.CSV(), `"he said ""hi"", twice"`) {
		t.Errorf("CSV quoting wrong:\n%s", q.CSV())
	}
}

func TestMeterStats(t *testing.T) {
	var m meter
	if m.avg() != 0 || m.max() != 0 || m.percentile(0.5) != 0 {
		t.Error("empty meter not zero")
	}
	for _, c := range []int64{1, 2, 3, 4, 100} {
		m.add(c)
	}
	if m.avg() != 22 {
		t.Errorf("avg = %v", m.avg())
	}
	if m.max() != 100 {
		t.Errorf("max = %v", m.max())
	}
	if m.percentile(0.5) != 3 {
		t.Errorf("p50 = %v", m.percentile(0.5))
	}
	if m.percentile(1) != 100 {
		t.Errorf("p100 = %v", m.percentile(1))
	}
}

// checkBound parses a cell as float and asserts it ≤ bound.
func checkBound(t *testing.T, tab Table, row, col int, bound float64, what string) {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", what, row, col, tab.Rows[row][col])
	}
	if v > bound {
		t.Errorf("%s: %v exceeds bound %v", what, v, bound)
	}
}

func TestFig1ShapeMatchesPaper(t *testing.T) {
	tables := runFig1()
	tab := tables[0]
	// Rows: [7], §4.1, cuckoo, [7]+trick, §4.3. The deterministic rows
	// must honour their worst-case bounds; cuckoo lookups must be 1.
	for i, row := range tab.Rows {
		name := row[0]
		switch {
		case strings.HasPrefix(name, "§4.1"):
			checkBound(t, tab, i, 2, 1, "§4.1 lookup worst")
			checkBound(t, tab, i, 4, 2, "§4.1 update worst")
		case strings.HasPrefix(name, "§4.3"):
			checkBound(t, tab, i, 1, 1.5, "§4.3 lookup avg ≤ 1+ɛ")
			checkBound(t, tab, i, 3, 2.5, "§4.3 update avg ≤ 2+ɛ")
			checkBound(t, tab, i, 2, 2, "§4.3 lookup worst")
		case strings.HasPrefix(name, "[13]"):
			checkBound(t, tab, i, 2, 1, "cuckoo lookup worst")
		}
	}
}

func TestThm7BoundsHold(t *testing.T) {
	tables := runThm7()
	tab := tables[0]
	for i, row := range tab.Rows {
		eps, _ := strconv.ParseFloat(row[0], 64)
		checkBound(t, tab, i, 2, 1+eps, "hit avg vs 1+ɛ")
		checkBound(t, tab, i, 4, 1, "miss avg")
		checkBound(t, tab, i, 5, 2+eps, "update avg vs 2+ɛ")
	}
}

func TestLemma3BoundHolds(t *testing.T) {
	tab := runLemma3()[0]
	for _, row := range tab.Rows {
		if row[7] != "true" {
			t.Errorf("Lemma 3 bound violated in row %v", row)
		}
	}
}

func TestTailsSeparation(t *testing.T) {
	tab := runTails()[0]
	// The hash table's adversarial insert max must dwarf the
	// deterministic structures' (which stay constant).
	var hashAdvMax, basicAdvMax float64
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "hash") && row[1] == "adversarial" {
			hashAdvMax, _ = strconv.ParseFloat(row[4], 64)
		}
		if strings.HasPrefix(row[0], "§4.1") && row[1] == "adversarial" {
			basicAdvMax, _ = strconv.ParseFloat(row[4], 64)
		}
	}
	if hashAdvMax < 5*basicAdvMax {
		t.Errorf("adversarial separation too weak: hash max %v vs basic max %v", hashAdvMax, basicAdvMax)
	}
	if basicAdvMax > 2 {
		t.Errorf("§4.1 adversarial insert max = %v, want ≤ 2 (deterministic worst case)", basicAdvMax)
	}
}

func TestThm6LookupIsOneIO(t *testing.T) {
	tab := runThm6()[0]
	for i := range tab.Rows {
		checkBound(t, tab, i, 6, 1, "static lookup worst")
	}
}

func TestBTreeSeparation(t *testing.T) {
	tab := runBTree()[0]
	// The basic dictionary's average must beat both B-tree variants at
	// every n.
	var btreeAvg, basicAvg float64 = 0, 10
	for _, row := range tab.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		if strings.HasPrefix(row[0], "B-tree (block") && v > btreeAvg {
			btreeAvg = v
		}
		if strings.HasPrefix(row[0], "§4.1") && v < basicAvg {
			basicAvg = v
		}
	}
	if basicAvg >= btreeAvg {
		t.Errorf("dictionary avg %v not below B-tree avg %v", basicAvg, btreeAvg)
	}
	if basicAvg != 1 {
		t.Errorf("dictionary lookup avg = %v, want exactly 1", basicAvg)
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	var buf bytes.Buffer
	tables, err := Run("", &buf, false)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(tables) < 13 {
		t.Errorf("only %d tables produced", len(tables))
	}
}

package bench

import (
	"fmt"
	"math/rand"

	"pdmdict/internal/btree"
	"pdmdict/internal/core"
	"pdmdict/internal/expander"
	"pdmdict/internal/loadbalance"
	"pdmdict/internal/pdm"
	"pdmdict/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E12-scaling",
		Title: "scaling series: per-op cost vs n (constant for dictionaries, log for B-trees)",
		Run:   runScaling,
	})
}

// runScaling produces the series the paper's asymptotics predict: the
// dictionaries' lookup cost is a flat line in n while the B-tree's is
// the Θ(log_B n) staircase (Section 1: "the query time of a B-tree in
// the parallel disk model is Θ(log_BD n), which means that no
// asymptotic speedup is achieved compared to the one disk case"). A
// second series shows the load balancer's max load tracking the average
// within the Lemma 3 additive term as the load grows.
func runScaling() []Table {
	d, b := 14, 64
	series := Table{
		ID:      "E12-scaling",
		Title:   "lookup avg parallel I/Os vs n (d=14, B=64)",
		Columns: []string{"n", "§4.1 basic", "§4.3 dynamic", "B-tree (block)", "B-tree (striped)"},
	}
	for _, n := range []int{1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14} {
		keys := workload.Uniform(n, 1<<44, int64(n))
		probes := keys
		if len(probes) > 2000 {
			probes = probes[:2000]
		}
		row := []interface{}{n}

		{
			m := newMachine(pdm.Config{D: d, B: b})
			bd, err := core.NewBasic(m, core.BasicConfig{Capacity: n, Seed: uint64(n)})
			if err != nil {
				panic(err)
			}
			for _, k := range keys {
				if err := bd.Insert(k, nil); err != nil {
					panic(err)
				}
			}
			m.ResetStats()
			for _, k := range probes {
				bd.Contains(k)
			}
			row = append(row, float64(m.Stats().ParallelIOs)/float64(len(probes)))
		}
		{
			m := newMachine(pdm.Config{D: 2 * d, B: b})
			dd, err := core.NewDynamic(m, core.DynamicConfig{Capacity: n, Epsilon: 0.9, Seed: uint64(n)})
			if err != nil {
				panic(err)
			}
			for _, k := range keys {
				if err := dd.Insert(k, nil); err != nil {
					panic(err)
				}
			}
			m.ResetStats()
			for _, k := range probes {
				dd.Contains(k)
			}
			row = append(row, float64(m.Stats().ParallelIOs)/float64(len(probes)))
		}
		for _, striped := range []bool{false, true} {
			m := newMachine(pdm.Config{D: d, B: b})
			tr, err := btree.New(m, btree.Config{Striped: striped})
			if err != nil {
				panic(err)
			}
			for _, k := range keys {
				if err := tr.Insert(k, nil); err != nil {
					panic(err)
				}
			}
			m.ResetStats()
			for _, k := range probes {
				tr.Contains(k)
			}
			row = append(row, float64(m.Stats().ParallelIOs)/float64(len(probes)))
		}
		series.AddRow(row...)
	}
	series.Notes = append(series.Notes,
		"the dictionary columns are flat lines at 1.0; the B-tree columns grow with n — the Θ(log_BD n) separation of the paper's Section 1")

	// Heavily loaded balls-into-bins: max load vs average as n grows at
	// fixed v (the Lemma 3 additive term stays put).
	lb := Table{
		ID:      "E12-scaling",
		Title:   "load balancing: max load vs average as n grows (d=16, v=2048, k=1)",
		Columns: []string{"n", "avg load", "max load (expander greedy)", "gap", "max load (2-choice)"},
	}
	u := uint64(1) << 44
	v := 2048
	g := expander.NewFamily(u, 16, v/16, 401)
	for _, mult := range []int{1, 2, 4, 8, 16, 32} {
		n := mult * v
		s := expander.SampleSet(u, n, rand.New(rand.NewSource(int64(mult))))
		bal := loadbalance.New(g, 1)
		max := bal.PlaceAll(s)
		two := loadbalance.New(expander.NewUnstriped(u, 2, v, 402), 1)
		maxTwo := two.PlaceAll(s)
		lb.AddRow(n, bal.AverageLoad(), max, fmt.Sprintf("+%.1f", float64(max)-bal.AverageLoad()), maxTwo)
	}
	lb.Notes = append(lb.Notes,
		"Lemma 3's shape in the heavily loaded case: the gap between max and average stays a small additive constant as the average grows 32×, matching Berenbrink et al.'s O(log log n) deviation for the randomized process — deterministically")
	return []Table{series, lb}
}

package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"pdmdict/internal/bucket"
	"pdmdict/internal/core"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// Throughput mode (`pdmbench -parallel N`): a multi-client query engine
// over one shared Section 4.1 dictionary. Each client is a synchronous
// query stream — issue an operation, wait out its modeled device
// latency (scaled down by TimeScale so runs finish in seconds), issue
// the next. The simulated machine itself answers at memory speed, so
// without pacing a wall clock would only measure Go's memcpy; with it,
// wall throughput shows what the concurrency machinery actually buys a
// storage system: N independent streams overlap their waits, and
// ops/sec grows with N until the host CPU (or lock contention in the
// sharded machine) saturates. The modeled serial rate — total device
// time of the I/O issued, no overlap — is reported alongside as the
// deterministic, host-independent baseline.

// ThroughputConfig parameterizes one throughput run.
type ThroughputConfig struct {
	// Clients is the number of concurrent query streams.
	Clients int
	// TotalOps is the operation budget, split evenly across clients.
	TotalOps int
	// Keys is the number of records preloaded (via BulkLoad) before the
	// clock starts.
	Keys int
	// ReadFrac is the fraction of operations that are lookups; the rest
	// are inserts of fresh keys. Defaults to 0.95 (read-heavy).
	ReadFrac float64
	// TimeScale divides the modeled latencies for pacing: 1000 means one
	// simulated millisecond costs one real microsecond. Defaults to 250.
	TimeScale int64
	// Seed derives the dictionary layout and every client's private key
	// sequence.
	Seed uint64
	// D and B are the machine shape; default 20 disks × 64-word blocks.
	D, B int
}

func (c *ThroughputConfig) normalize() error {
	if c.Clients <= 0 {
		return fmt.Errorf("bench: Clients = %d, must be positive", c.Clients)
	}
	if c.TotalOps == 0 {
		c.TotalOps = 8000
	}
	if c.Keys == 0 {
		c.Keys = 4096
	}
	if c.ReadFrac == 0 {
		c.ReadFrac = 0.95
	}
	if c.ReadFrac < 0 || c.ReadFrac > 1 {
		return fmt.Errorf("bench: ReadFrac = %v outside [0,1]", c.ReadFrac)
	}
	if c.TimeScale == 0 {
		c.TimeScale = 250
	}
	if c.TimeScale < 1 {
		return fmt.Errorf("bench: TimeScale = %d, must be positive", c.TimeScale)
	}
	if c.D == 0 {
		c.D = 20
	}
	if c.B == 0 {
		c.B = 64
	}
	return nil
}

// ClientSLO is one client's exact per-operation service-level digest,
// produced by the obs.OpAccountant attached to the run: every figure
// comes from token-attributed charges, not from dividing machine totals
// by operation counts.
type ClientSLO struct {
	Client     int     `json:"client"`
	Ops        int64   `json:"ops"`
	StepsMean  float64 `json:"steps_mean"`  // exact steps per op, averaged
	StepsP99   int64   `json:"steps_p99"`   // per-op parallel I/O steps
	P50Micros  int64   `json:"lat_p50_us"`  // modeled latency quantiles
	P99Micros  int64   `json:"lat_p99_us"`  // (DESIGN.md §10 cost model)
	P999Micros int64   `json:"lat_p999_us"` //
}

// ThroughputResult is one measured run.
type ThroughputResult struct {
	Clients          int     `json:"clients"`
	Ops              int64   `json:"ops"`
	Lookups          int64   `json:"lookups"`
	Inserts          int64   `json:"inserts"`
	WallNanos        int64   `json:"wall_ns"`
	WallOpsPerSec    float64 `json:"wall_ops_per_sec"`
	ModeledNanos     int64   `json:"modeled_serial_ns"`
	ModeledOpsPerSec float64 `json:"modeled_serial_ops_per_sec"`
	ParallelIOs      int64   `json:"parallel_ios"`
	BlockReads       int64   `json:"block_reads"`
	BlockWrites      int64   `json:"block_writes"`

	// Exact per-operation accounting (PR 6): OpsAccounted completed
	// token-carrying operations, their summed steps (which must equal
	// the per-client sums — the accountant charges each op exactly
	// once), the batch-inclusive worst per-key cost, and the merged
	// modeled-latency quantiles across all clients.
	OpsAccounted   int64       `json:"ops_accounted"`
	OpStepsMean    float64     `json:"op_steps_mean"`
	OpWorstPerKey  int64       `json:"op_worst_steps_per_key"`
	OpLatP50Micros int64       `json:"op_lat_p50_us"`
	OpLatP99Micros int64       `json:"op_lat_p99_us"`
	OpLatP999us    int64       `json:"op_lat_p999_us"`
	PerClient      []ClientSLO `json:"per_client_slo,omitempty"`
}

// RunThroughput builds the dictionary, preloads it, and drives
// cfg.Clients concurrent streams over it.
func RunThroughput(cfg ThroughputConfig) (ThroughputResult, error) {
	var res ThroughputResult
	if err := cfg.normalize(); err != nil {
		return res, err
	}
	perClient := cfg.TotalOps / cfg.Clients
	if perClient == 0 {
		return res, fmt.Errorf("bench: TotalOps %d below Clients %d", cfg.TotalOps, cfg.Clients)
	}

	// Capacity: preload + every client's private insert range + warmup.
	capacity := cfg.Keys + cfg.Clients*perClient + 8
	m := newMachine(pdm.Config{D: cfg.D, B: cfg.B})

	// Exact per-operation accounting: every client request carries an op
	// token, and the accountant folds the event stream into per-client
	// SLO aggregates online. Tee preserves the suite hook (-serve).
	acct := obs.NewOpAccountant()
	acct.SampleEvery = 64 // flight recorder: sampled, not exhaustive
	m.SetHook(obs.Tee(suiteHook, acct))
	dict, err := core.NewBasic(m, core.BasicConfig{
		Capacity: capacity,
		SatWords: 1,
		Universe: 1 << 62,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return res, err
	}

	// Preload: key space 2i+1 (odd), so fresh insert keys (even, above
	// the preload range) never collide.
	recs := make([]bucket.Record, cfg.Keys)
	for i := range recs {
		k := pdm.Word(2*i + 1)
		recs[i] = bucket.Record{Key: k, Sat: []pdm.Word{k * 13}}
	}
	if err := dict.BulkLoad(recs, dict.BlocksPerDisk(), 8); err != nil {
		return res, err
	}

	// Unit costs, measured on sacrificial keys: every lookup (resp.
	// fresh insert) on this structure has the same batch shape, so one
	// sample prices the pacing sleep for all of them.
	unit := func(op func()) (steps, blocks int64) {
		before := m.Stats()
		op()
		after := m.Stats()
		return after.ParallelIOs - before.ParallelIOs,
			(after.BlockReads - before.BlockReads) + (after.BlockWrites - before.BlockWrites)
	}
	warmKey := pdm.Word(2*capacity + 2)
	insSteps, insBlocks := unit(func() {
		if err = dict.Insert(warmKey, []pdm.Word{1}); err != nil {
			err = fmt.Errorf("bench: warmup insert: %w", err)
		}
	})
	if err != nil {
		return res, err
	}
	lookSteps, lookBlocks := unit(func() { dict.Lookup(warmKey) })
	insPace := time.Duration(obs.DefaultCostModel.Latency(insSteps, insBlocks).Nanoseconds() / cfg.TimeScale)
	lookPace := time.Duration(obs.DefaultCostModel.Latency(lookSteps, lookBlocks).Nanoseconds() / cfg.TimeScale)

	base := m.Stats()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Clients)
	var lookups, inserts int64
	counts := make([]struct{ looks, ins int64 }, cfg.Clients)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(c)*7919 + 1))
			nextFresh := pdm.Word(2 * (cfg.Keys + c*perClient + 1)) // even: disjoint from preload and other clients
			for i := 0; i < perClient; i++ {
				if rng.Float64() < cfg.ReadFrac {
					k := pdm.Word(2*rng.Intn(cfg.Keys) + 1)
					sat, ok := dict.LookupOp(m.NewOp(c, 1), k)
					if !ok || sat[0] != k*13 {
						errs <- fmt.Errorf("bench: client %d lookup %d: ok=%v sat=%v", c, k, ok, sat)
						return
					}
					counts[c].looks++
					time.Sleep(lookPace)
				} else {
					if err := dict.InsertOp(m.NewOp(c, 1), nextFresh, []pdm.Word{nextFresh * 13}); err != nil {
						errs <- fmt.Errorf("bench: client %d insert %d: %w", c, nextFresh, err)
						return
					}
					nextFresh += 2
					counts[c].ins++
					time.Sleep(insPace)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return res, err
	}
	for _, ct := range counts {
		lookups += ct.looks
		inserts += ct.ins
	}

	s := m.Stats()
	res.Clients = cfg.Clients
	res.Lookups = lookups
	res.Inserts = inserts
	res.Ops = lookups + inserts
	res.WallNanos = wall.Nanoseconds()
	res.WallOpsPerSec = float64(res.Ops) / wall.Seconds()
	res.ParallelIOs = s.ParallelIOs - base.ParallelIOs
	res.BlockReads = s.BlockReads - base.BlockReads
	res.BlockWrites = s.BlockWrites - base.BlockWrites
	modeled := obs.DefaultCostModel.Latency(res.ParallelIOs, res.BlockReads+res.BlockWrites)
	res.ModeledNanos = modeled.Nanoseconds()
	if modeled > 0 {
		res.ModeledOpsPerSec = float64(res.Ops) / modeled.Seconds()
	}

	// Fold the accountant's exact per-client records into the result.
	// Merging the per-client latency histograms is exact: buckets are
	// log₂ ranges, so re-observing a bucket's Hi edge Count times lands
	// every sample back in the same bucket.
	ops, steps, _, _ := acct.Totals()
	res.OpsAccounted = ops
	if ops > 0 {
		res.OpStepsMean = float64(steps) / float64(ops)
	}
	res.OpWorstPerKey = acct.WorstOp()
	merged := &obs.Hist{}
	clients := acct.Clients()
	ids := make([]int, 0, len(clients))
	for id := range clients {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		agg := clients[id]
		slo := ClientSLO{
			Client:     id,
			Ops:        agg.Count,
			StepsP99:   agg.Steps.Quantile(0.99),
			P50Micros:  agg.LatencyMicros.Quantile(0.50),
			P99Micros:  agg.LatencyMicros.Quantile(0.99),
			P999Micros: agg.LatencyMicros.Quantile(0.999),
		}
		if agg.Count > 0 {
			slo.StepsMean = float64(agg.StepSum) / float64(agg.Count)
		}
		res.PerClient = append(res.PerClient, slo)
		for _, b := range agg.LatencyMicros.Buckets() {
			for n := int64(0); n < b.Count; n++ {
				merged.Observe(b.Hi)
			}
		}
	}
	res.OpLatP50Micros = merged.Quantile(0.50)
	res.OpLatP99Micros = merged.Quantile(0.99)
	res.OpLatP999us = merged.Quantile(0.999)
	return res, nil
}

// ThroughputTable runs the workload once per client count and renders
// the comparison (speedup is wall ops/sec relative to the first row).
func ThroughputTable(cfg ThroughputConfig, clientCounts []int) (Table, []ThroughputResult, error) {
	t := Table{
		ID: "T1-parallel",
		Title: fmt.Sprintf("multi-client throughput: §4.1 dictionary, %d keys, %.0f%% reads, modeled latency ÷%d",
			nz(cfg.Keys, 4096), nzf(cfg.ReadFrac, 0.95)*100, nz64(cfg.TimeScale, 250)),
		Columns: []string{"clients", "ops", "wall ms", "wall ops/s", "modeled serial ops/s", "speedup",
			"op steps", "lat p50 µs", "p99", "p999"},
	}
	var results []ThroughputResult
	var baseline float64
	for _, n := range clientCounts {
		c := cfg
		c.Clients = n
		r, err := RunThroughput(c)
		if err != nil {
			return t, nil, err
		}
		results = append(results, r)
		if baseline == 0 {
			baseline = r.WallOpsPerSec
		}
		t.AddRow(r.Clients, r.Ops,
			fmt.Sprintf("%.0f", float64(r.WallNanos)/1e6),
			fmt.Sprintf("%.0f", r.WallOpsPerSec),
			fmt.Sprintf("%.1f", r.ModeledOpsPerSec),
			fmt.Sprintf("%.2fx", r.WallOpsPerSec/baseline),
			fmt.Sprintf("%.2f", r.OpStepsMean),
			r.OpLatP50Micros, r.OpLatP99Micros, r.OpLatP999us)
	}
	t.Notes = append(t.Notes,
		"each client is a synchronous stream paced by the DESIGN.md §10 HDD cost model (scaled); speedup is latency hiding across streams",
		"modeled serial ops/s assumes no overlap — the single-stream device-bound rate, independent of the host",
		"op steps and latency quantiles are exact per-operation figures from token attribution (obs.OpAccountant), merged over all clients; JSON carries the per-client breakdown")
	return t, results, nil
}

func nz(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func nz64(v, def int64) int64 {
	if v == 0 {
		return def
	}
	return v
}

func nzf(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

package bench

import "pdmdict/internal/pdm"

// suiteHook, when set, is attached to every machine the experiments
// build, so a whole run can be observed live (cmd/pdmbench -serve
// wires the obs collector behind its /metrics endpoint here). The
// suite is single-goroutine per experiment, so a plain variable
// suffices; set it before Run.
var suiteHook pdm.Hook

// SetHook attaches h to every machine subsequently built by the
// experiments (nil detaches).
func SetHook(h pdm.Hook) { suiteHook = h }

// newMachine is how every experiment builds its parallel-disk machine:
// pdm.NewMachine plus the suite hook.
func newMachine(cfg pdm.Config) *pdm.Machine {
	m := pdm.NewMachine(cfg)
	if suiteHook != nil {
		m.SetHook(suiteHook)
	}
	return m
}

package bench

import (
	"fmt"
	"math/rand"

	"pdmdict/internal/btree"
	"pdmdict/internal/bucket"
	"pdmdict/internal/core"
	"pdmdict/internal/extsort"
	"pdmdict/internal/pdm"
	"pdmdict/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E4-thm6",
		Title: "Theorem 6: static dictionary — 1-I/O lookups, construction ∝ sort(nd)",
		Run:   runThm6,
	})
}

func runThm6() []Table {
	t := Table{
		ID:      "E4-thm6",
		Title:   "static construction and lookup costs (d=12, B=64, σ=2 words)",
		Columns: []string{"case", "n", "build I/Os", "sort(nd) I/Os", "ratio", "lookup avg", "lookup worst", "space (blocks/disk)"},
	}
	d, b, sat := 12, 64, 2
	for _, cs := range []core.StaticCase{core.CaseB, core.CaseA} {
		for _, n := range []int{1024, 4096} {
			keys := workload.Uniform(n, 1<<44, int64(n))
			recs := make([]bucket.Record, n)
			for i, k := range keys {
				recs[i] = bucket.Record{Key: k, Sat: []pdm.Word{k + 1, k + 2}}
			}
			disks := d
			if cs == core.CaseA {
				disks = 2 * d
			}
			m := newMachine(pdm.Config{D: disks, B: b})
			sd, err := core.BuildStatic(m, core.StaticConfig{SatWords: sat, Case: cs, Seed: uint64(n)}, recs)
			if err != nil {
				panic(err)
			}

			// Baseline: sort nd two-word records on an identical machine.
			ms := newMachine(pdm.Config{D: disks, B: b})
			v := &extsort.Vec{M: ms, Start: 0, RecWords: 2, N: n * d}
			data := make([]pdm.Word, v.Words())
			rng := rand.New(rand.NewSource(int64(n) + 1))
			for i := range data {
				data[i] = pdm.Word(rng.Uint64())
			}
			extsort.WriteAll(v, data)
			ms.ResetStats()
			extsort.Sort(v, v.SortStripes(8), 8, extsort.ByWord(0))
			sortIOs := ms.Stats().ParallelIOs

			var hit meter
			for _, k := range keys {
				before := m.Stats().ParallelIOs
				if _, ok := sd.Lookup(k); !ok {
					panic("bench: static key lost")
				}
				hit.add(m.Stats().ParallelIOs - before)
			}
			build := sd.ConstructionIOs.ParallelIOs
			t.AddRow(cs.String(), n, build, sortIOs,
				float64(build)/float64(sortIOs), hit.avg(), hit.max(), sd.BlocksPerDisk())
		}
	}
	t.Notes = append(t.Notes,
		"Theorem 6: lookups take one parallel I/O (the 'lookup worst' column must read 1) and construction is proportional to sorting nd records — the ratio column is the measured constant")
	return []Table{t}
}

func init() {
	register(Experiment{
		ID:    "E5-thm7",
		Title: "Theorem 7: dynamic dictionary — 1 I/O misses, 1+ɛ hits, 2+ɛ updates",
		Run:   runThm7,
	})
}

func runThm7() []Table {
	t := Table{
		ID:      "E5-thm7",
		Title:   "measured averages vs the theorem's bounds (n = 4096, B = 64)",
		Columns: []string{"ɛ", "d", "hit avg", "bound 1+ɛ", "miss avg", "update avg", "bound 2+ɛ", "hit worst", "levels used"},
	}
	n := 4096
	for _, eps := range []float64{0.5, 0.25, 0.1} {
		d := int(6*(1+1/eps)) + 2 // minimal degree satisfying the theorem
		m := newMachine(pdm.Config{D: 2 * d, B: 64})
		dd, err := core.NewDynamic(m, core.DynamicConfig{Capacity: n, SatWords: 1, Epsilon: eps, Seed: uint64(d)})
		if err != nil {
			panic(err)
		}
		keys := workload.Uniform(n, 1<<44, int64(d))
		var ins, hit, miss meter
		for _, k := range keys {
			before := m.Stats().ParallelIOs
			if err := dd.Insert(k, []pdm.Word{1}); err != nil {
				panic(err)
			}
			ins.add(m.Stats().ParallelIOs - before)
		}
		for _, k := range keys {
			before := m.Stats().ParallelIOs
			if !dd.Contains(k) {
				panic("bench: dynamic key lost")
			}
			hit.add(m.Stats().ParallelIOs - before)
		}
		for _, k := range keys[:n/4] {
			before := m.Stats().ParallelIOs
			if dd.Contains(k | 1<<55) {
				panic("bench: phantom key")
			}
			miss.add(m.Stats().ParallelIOs - before)
		}
		used := 0
		for _, c := range dd.LevelCounts() {
			if c > 0 {
				used++
			}
		}
		t.AddRow(eps, d, hit.avg(), 1+eps, miss.avg(), ins.avg(), 2+eps, hit.max(), used)
	}

	// Level occupancy decay for the default configuration.
	decay := Table{
		ID:      "E5-thm7",
		Title:   "level occupancy decay (ɛ=0.5): the geometric cascade of §4.3",
		Columns: []string{"level", "keys", "fraction"},
	}
	m := newMachine(pdm.Config{D: 40, B: 64})
	dd, err := core.NewDynamic(m, core.DynamicConfig{Capacity: n, SatWords: 1, Seed: 99})
	if err != nil {
		panic(err)
	}
	for _, k := range workload.Uniform(n, 1<<44, 100) {
		if err := dd.Insert(k, []pdm.Word{1}); err != nil {
			panic(err)
		}
	}
	for i, c := range dd.LevelCounts() {
		decay.AddRow(i+1, c, float64(c)/float64(n))
	}
	decay.Notes = append(decay.Notes,
		"Theorem 7's averaging argument: the fraction of keys below level i decays geometrically, so level probes beyond the first contribute only ɛ on average")
	return []Table{t, decay}
}

func init() {
	register(Experiment{
		ID:    "E8-btree",
		Title: "B-tree baseline (§1.2): Θ(log_BD n) vs the dictionaries' 1 I/O",
		Run:   runBTree,
	})
}

func runBTree() []Table {
	t := Table{
		ID:      "E8-btree",
		Title:   "file-system workload: random block lookups, (inode, block#) keys",
		Columns: []string{"structure", "n", "lookup avg I/Os", "lookup worst", "note"},
	}
	d, b := 12, 64
	for _, n := range []int{1 << 12, 1 << 16} {
		keys := workload.FileSystemKeys(n/64, 64)
		probe := workload.ZipfAccesses(keys, 2000, 1.2, int64(n))

		{
			m := newMachine(pdm.Config{D: d, B: b})
			tr, err := btree.New(m, btree.Config{SatWords: 1})
			if err != nil {
				panic(err)
			}
			for _, k := range keys {
				tr.Insert(k, []pdm.Word{1})
			}
			var hit meter
			for _, k := range probe {
				before := m.Stats().ParallelIOs
				tr.Lookup(k)
				hit.add(m.Stats().ParallelIOs - before)
			}
			t.AddRow("B-tree (block nodes)", n, hit.avg(), hit.max(), fmt.Sprintf("height=%d fanout=%d", tr.Height(), tr.Fanout()))
		}
		{
			m := newMachine(pdm.Config{D: d, B: b})
			tr, err := btree.New(m, btree.Config{SatWords: 1, Striped: true})
			if err != nil {
				panic(err)
			}
			for _, k := range keys {
				tr.Insert(k, []pdm.Word{1})
			}
			var hit meter
			for _, k := range probe {
				before := m.Stats().ParallelIOs
				tr.Lookup(k)
				hit.add(m.Stats().ParallelIOs - before)
			}
			t.AddRow("B-tree (striped nodes)", n, hit.avg(), hit.max(), fmt.Sprintf("height=%d fanout=%d", tr.Height(), tr.Fanout()))
		}
		{
			m := newMachine(pdm.Config{D: d, B: b})
			bd, err := core.NewBasic(m, core.BasicConfig{Capacity: n, SatWords: 1, Seed: uint64(n)})
			if err != nil {
				panic(err)
			}
			for _, k := range keys {
				if err := bd.Insert(k, []pdm.Word{1}); err != nil {
					panic(err)
				}
			}
			var hit meter
			for _, k := range probe {
				before := m.Stats().ParallelIOs
				bd.Lookup(k)
				hit.add(m.Stats().ParallelIOs - before)
			}
			t.AddRow("§4.1 basic dictionary", n, hit.avg(), hit.max(), "one probe")
		}
	}
	t.Notes = append(t.Notes,
		"paper §1.2: 'in most settings it takes 3 disk accesses before the contents of the block is available … making just one disk read instead of 3 can have a tremendous impact'")
	return []Table{t}
}

func init() {
	register(Experiment{
		ID:    "E10-rebuild",
		Title: "global rebuilding (§4 intro): worst-case constant ops across growth",
		Run:   runRebuild,
	})
}

func runRebuild() []Table {
	t := Table{
		ID:      "E10-rebuild",
		Title:   "fully dynamic wrapper under a mixed stream crossing capacity repeatedly",
		Columns: []string{"ops", "final n", "rebuilds", "avg I/Os per op", "worst op I/Os"},
	}
	d, err := core.NewDict(core.DictConfig{InitialCapacity: 256, SatWords: 1, Seed: 81})
	if err != nil {
		panic(err)
	}
	keys := workload.Uniform(4096, 1<<44, 82)
	ops := workload.Ops(keys, 12000, workload.WriteHeavy, 0.1, 83)
	for _, op := range ops {
		switch op.Kind {
		case workload.OpInsert:
			if err := d.Insert(op.Key, []pdm.Word{1}); err != nil {
				panic(err)
			}
		case workload.OpLookup:
			d.Lookup(op.Key)
		case workload.OpDelete:
			d.Delete(op.Key)
		}
	}
	s := d.Stats()
	t.AddRow(s.Ops, d.Len(), s.Rebuilds, float64(s.ParallelIOs)/float64(s.Ops), s.WorstOp)
	t.Notes = append(t.Notes,
		"the worst op stays a small constant even while rebuilds run — the Overmars–van Leeuwen worst-case technique the paper invokes; an amortized rebuild would show an Θ(n) spike instead")
	return []Table{t}
}

func init() {
	register(Experiment{
		ID:    "A2-ablate-cascade",
		Title: "ablation: §4.3 first-array slack vs average lookups and space",
		Run:   runAblateCascade,
	})
}

func runAblateCascade() []Table {
	t := Table{
		ID:      "A2-ablate-cascade",
		Title:   "DynamicDict (ɛ=0.5, n=2048): shrinking the arrays pushes keys deeper",
		Columns: []string{"slack", "hit avg I/Os", "level-1 fraction", "levels used", "space (blocks/disk)"},
	}
	n := 2048
	for _, slack := range []float64{1.5, 2, 4, 6} {
		m := newMachine(pdm.Config{D: 40, B: 64})
		dd, err := core.NewDynamic(m, core.DynamicConfig{Capacity: n, SatWords: 1, Slack: slack, Seed: 91})
		if err != nil {
			panic(err)
		}
		keys := workload.Uniform(n, 1<<44, 92)
		failed := false
		for _, k := range keys {
			if err := dd.Insert(k, []pdm.Word{1}); err != nil {
				failed = true
				break
			}
		}
		if failed {
			t.AddRow(slack, "insert failed (arrays too small)", "-", "-", "-")
			continue
		}
		var hit meter
		for _, k := range keys {
			before := m.Stats().ParallelIOs
			dd.Contains(k)
			hit.add(m.Stats().ParallelIOs - before)
		}
		counts := dd.LevelCounts()
		used := 0
		for _, c := range counts {
			if c > 0 {
				used++
			}
		}
		t.AddRow(slack, hit.avg(), float64(counts[0])/float64(n), used, dd.BlocksPerDisk())
	}
	t.Notes = append(t.Notes,
		"the design trade-off behind Theorem 7: array slack buys average lookups close to 1; the theorem's regime (slack 6 ≈ ε=1/12) keeps essentially everything at level 1")
	return []Table{t}
}

func init() {
	register(Experiment{
		ID:    "A3-ablate-k",
		Title: "ablation: §4.1 k=1 vs k=d/2 — bandwidth vs load",
		Run:   runAblateK,
	})
}

func runAblateK() []Table {
	t := Table{
		ID:      "A3-ablate-k",
		Title:   "BasicDict (d=16, B=64, n=512): fragments per key",
		Columns: []string{"k", "σ supported (words)", "lookup avg", "update avg", "max bucket load"},
	}
	n, d, b := 512, 16, 64
	for _, k := range []int{1, 4, d / 2} {
		sigma := 4 * k // satellite scales with the fragment count
		m := newMachine(pdm.Config{D: d, B: b})
		bd, err := core.NewBasic(m, core.BasicConfig{Capacity: n, SatWords: sigma, K: k, Seed: uint64(k)})
		if err != nil {
			panic(err)
		}
		r := runner{insert: bd.Insert, lookup: bd.Contains,
			cost: func() int64 { return m.Stats().ParallelIOs }}
		keys := workload.Uniform(n, 1<<44, int64(k))
		ins, hit, _ := measure(r, keys, sigma)
		t.AddRow(k, sigma, hit.avg(), ins.avg(), bd.MaxLoad())
	}
	t.Notes = append(t.Notes,
		"k=d/2 multiplies the satellite retrievable in one I/O (the §4.1 bandwidth trick) at the cost of k items per key in the load balance — Lemma 3 absorbs it while d > k")
	return []Table{t}
}

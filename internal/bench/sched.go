package bench

import (
	"fmt"
	"math/rand"
	"sync"

	"pdmdict/internal/bucket"
	"pdmdict/internal/core"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
	"pdmdict/internal/sched"
)

// Scheduled-lookup mode (`pdmbench -parallel ... -sched`): the same
// uniform multi-client lookup workload run twice over identical §4.1
// dictionaries — once with every client probing the machine directly
// (each lookup is its own parallel-I/O round), once through the
// group-commit scheduler (sched.Scheduler in deterministic mode,
// MaxBatch = client count), which coalesces the window's lookups into
// one deduplicated shared round. The figure of merit is modeled
// parallel-I/O steps per operation: a shared round costs the deepest
// per-disk queue of DISTINCT blocks, so k concurrent probes that
// spread over the disks (or collide on the same block) cost far less
// than k sequential rounds. The dictionary is kept small relative to
// the disk count on purpose: coalescing pays exactly when concurrent
// probes land in a bounded block population, which is the serving
// regime the scheduler targets (hot working set, many clients).

// SchedBenchConfig parameterizes one scheduled-vs-direct comparison.
type SchedBenchConfig struct {
	// OpsPerClient is each client's lookup budget. Defaults to 200.
	OpsPerClient int
	// Keys is the number of records preloaded before either phase.
	// Defaults to 256 — a hot working set spanning a handful of blocks
	// per disk, so window-level dedup can cap the shared round's cost.
	Keys int
	// Seed derives the layout and every client's private key sequence;
	// both phases replay identical sequences.
	Seed uint64
	// D and B are the machine shape; default 20 disks × 64-word blocks.
	D, B int
}

func (c *SchedBenchConfig) normalize() {
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 200
	}
	if c.Keys == 0 {
		c.Keys = 256
	}
	if c.D == 0 {
		c.D = 20
	}
	if c.B == 0 {
		c.B = 64
	}
}

// SchedResult is one client-count row of the comparison.
type SchedResult struct {
	Clients int   `json:"clients"`
	Ops     int64 `json:"ops"`

	// Modeled parallel-I/O steps, direct vs scheduled, and their
	// per-operation rates. Improvement is direct/scheduled (>1 means
	// the scheduler reduced modeled I/O).
	DirectSteps      int64   `json:"direct_steps"`
	DirectStepsPerOp float64 `json:"direct_steps_per_op"`
	SchedSteps       int64   `json:"sched_steps"`
	SchedStepsPerOp  float64 `json:"sched_steps_per_op"`
	Improvement      float64 `json:"improvement"`

	// Scheduler shape: shared rounds issued, rounds saved by merging,
	// and the mean coalescing factor (lookups per shared round).
	Rounds       int64   `json:"rounds"`
	RoundsSaved  int64   `json:"rounds_saved"`
	RoundsShared float64 `json:"rounds_shared"`

	// Exact per-op accounting over the scheduled phase: completed
	// token-carrying ops (must equal Ops) and their mean charge — each
	// participant pays the full merged round once.
	OpsAccounted int64   `json:"ops_accounted"`
	OpStepsMean  float64 `json:"op_steps_mean"`
}

// schedBenchDict builds one preloaded dictionary for a phase. Both
// phases call it with the same config, so layouts are identical.
func schedBenchDict(cfg SchedBenchConfig, hook pdm.Hook) (*pdm.Machine, *core.BasicDict, error) {
	m := newMachine(pdm.Config{D: cfg.D, B: cfg.B})
	if hook != nil {
		m.SetHook(hook)
	}
	dict, err := core.NewBasic(m, core.BasicConfig{
		Capacity: cfg.Keys + 8,
		SatWords: 1,
		Universe: 1 << 62,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	recs := make([]bucket.Record, cfg.Keys)
	for i := range recs {
		k := pdm.Word(2*i + 1)
		recs[i] = bucket.Record{Key: k, Sat: []pdm.Word{k * 13}}
	}
	if err := dict.BulkLoad(recs, dict.BlocksPerDisk(), 8); err != nil {
		return nil, nil, err
	}
	return m, dict, nil
}

// schedBenchKey draws client c's i-th lookup key — the same function
// prices both phases, so the workloads are identical streams.
func schedBenchKeys(cfg SchedBenchConfig, c int) *rand.Rand {
	return rand.New(rand.NewSource(int64(cfg.Seed) + int64(c)*7919 + 1))
}

// RunSchedBench runs the comparison at one client count.
func RunSchedBench(cfg SchedBenchConfig, clients int) (SchedResult, error) {
	var res SchedResult
	cfg.normalize()
	if clients <= 0 {
		return res, fmt.Errorf("bench: clients = %d, must be positive", clients)
	}
	res.Clients = clients
	res.Ops = int64(clients * cfg.OpsPerClient)

	// Phase 1 — direct: every client probes the dictionary itself, one
	// parallel-I/O round per lookup.
	dm, direct, err := schedBenchDict(cfg, nil)
	if err != nil {
		return res, err
	}
	base := dm.Stats()
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := schedBenchKeys(cfg, c)
			for i := 0; i < cfg.OpsPerClient; i++ {
				k := pdm.Word(2*rng.Intn(cfg.Keys) + 1)
				if sat, ok := direct.LookupOp(dm.NewOp(c, 1), k); !ok || sat[0] != k*13 {
					errs <- fmt.Errorf("bench: direct client %d key %d: ok=%v sat=%v", c, k, ok, sat)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return res, err
	}
	res.DirectSteps = dm.Stats().ParallelIOs - base.ParallelIOs
	res.DirectStepsPerOp = float64(res.DirectSteps) / float64(res.Ops)

	// Phase 2 — scheduled: an identical fresh dictionary behind the
	// group-commit scheduler, deterministic mode, MaxBatch = clients.
	// Clients self-synchronize (each blocks on its in-flight lookup),
	// so every admission window coalesces one op per client.
	acct := obs.NewOpAccountant()
	acct.SampleEvery = 64
	sm, backing, err := schedBenchDict(cfg, obs.Tee(suiteHook, acct))
	if err != nil {
		return res, err
	}
	s := sched.New(backing, sched.Config{MaxBatch: clients, Steps: sm.StepCount})
	sbase := sm.Stats()
	errs = make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := schedBenchKeys(cfg, c)
			for i := 0; i < cfg.OpsPerClient; i++ {
				k := pdm.Word(2*rng.Intn(cfg.Keys) + 1)
				sat, ok, err := s.LookupOp(s.MintOp(c, 1), k)
				if err != nil {
					errs <- fmt.Errorf("bench: scheduled client %d key %d: %w", c, k, err)
					return
				}
				if !ok || sat[0] != k*13 {
					errs <- fmt.Errorf("bench: scheduled client %d key %d: ok=%v sat=%v", c, k, ok, sat)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return res, err
	}
	if err := s.Close(); err != nil {
		return res, err
	}
	res.SchedSteps = sm.Stats().ParallelIOs - sbase.ParallelIOs
	res.SchedStepsPerOp = float64(res.SchedSteps) / float64(res.Ops)
	if res.SchedSteps > 0 {
		res.Improvement = float64(res.DirectSteps) / float64(res.SchedSteps)
	}

	snap := s.Snapshot()
	res.Rounds = snap.Rounds
	res.RoundsSaved = snap.RoundsSaved
	if snap.Rounds > 0 {
		res.RoundsShared = float64(snap.Lookups) / float64(snap.Rounds)
	}
	ops, steps, _, _ := acct.Totals()
	res.OpsAccounted = ops
	if ops > 0 {
		res.OpStepsMean = float64(steps) / float64(ops)
	}
	return res, nil
}

// SchedTable runs the comparison once per client count and renders the
// ladder. The success metric is sched steps/op strictly below direct
// steps/op once several clients share each admission window.
func SchedTable(cfg SchedBenchConfig, clientCounts []int) (Table, []SchedResult, error) {
	cfg.normalize()
	t := Table{
		ID: "T2-sched",
		Title: fmt.Sprintf("group-commit scheduler: §4.1 dictionary, %d hot keys, %d lookups/client, direct vs coalesced",
			cfg.Keys, cfg.OpsPerClient),
		Columns: []string{"clients", "ops", "direct steps/op", "sched steps/op", "improvement",
			"rounds", "rounds saved", "coalesce", "ops accounted"},
	}
	var results []SchedResult
	for _, n := range clientCounts {
		r, err := RunSchedBench(cfg, n)
		if err != nil {
			return t, nil, err
		}
		results = append(results, r)
		t.AddRow(r.Clients, r.Ops,
			fmt.Sprintf("%.3f", r.DirectStepsPerOp),
			fmt.Sprintf("%.3f", r.SchedStepsPerOp),
			fmt.Sprintf("%.2fx", r.Improvement),
			r.Rounds, r.RoundsSaved,
			fmt.Sprintf("%.1f", r.RoundsShared),
			r.OpsAccounted)
	}
	t.Notes = append(t.Notes,
		"both phases replay identical per-client key streams over identically-built dictionaries; only the round structure differs",
		"a shared round costs the deepest per-disk queue of distinct blocks, so coalescing wins exactly what dedup and disk-spread save",
		"ops accounted comes from token attribution (obs.OpAccountant): every participant in a merged round is charged that round once")
	return t, results, nil
}

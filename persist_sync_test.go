package pdmdict

import (
	"bytes"
	"sync"
	"testing"
)

func TestPublicSaveOpenBasic(t *testing.T) {
	b, err := NewBasic(BasicOptions{Options: Options{Capacity: 100, SatWords: 1, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if err := b.Insert(Word(i*3+1), []Word{Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := OpenBasic(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 80 {
		t.Fatalf("Len = %d", r.Len())
	}
	// IOStats survive the round trip bit-for-bit (checked before any
	// further operations perturb them).
	if r.IOStats() != b.IOStats() {
		t.Errorf("stats diverged: %+v vs %+v", r.IOStats(), b.IOStats())
	}
	if sat, ok := r.Lookup(4); !ok || sat[0] != 1 {
		t.Fatalf("Lookup(4) = %v %v", sat, ok)
	}
}

func TestPublicSaveOpenAllKinds(t *testing.T) {
	var buf bytes.Buffer

	dy, err := NewDynamic(Options{Capacity: 100, SatWords: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dy.Insert(5, []Word{50})
	if err := dy.Save(&buf); err != nil {
		t.Fatal(err)
	}
	rdy, err := OpenDynamic(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sat, ok := rdy.Lookup(5); !ok || sat[0] != 50 {
		t.Fatalf("dynamic: %v %v", sat, ok)
	}

	buf.Reset()
	st, err := BuildStatic(StaticOptions{Options: Options{Capacity: 10, SatWords: 1, Degree: 6, Seed: 3}},
		[]Record{{Key: 9, Sat: []Word{90}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	rst, err := OpenStatic(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sat, ok := rst.Lookup(9); !ok || sat[0] != 90 {
		t.Fatalf("static: %v %v", sat, ok)
	}

	buf.Reset()
	dd, err := New(Options{Capacity: 32, SatWords: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 48; i++ { // forces a migration into the snapshot
		dd.Insert(Word(i+1), []Word{Word(i)})
	}
	if err := dd.Save(&buf); err != nil {
		t.Fatal(err)
	}
	rdd, err := OpenDict(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rdd.Len() != 48 {
		t.Fatalf("dict Len = %d", rdd.Len())
	}
	for i := 0; i < 48; i++ {
		if sat, ok := rdd.Lookup(Word(i + 1)); !ok || sat[0] != Word(i) {
			t.Fatalf("dict key %d: %v %v", i+1, sat, ok)
		}
	}
}

func TestSynchronizedConcurrentUse(t *testing.T) {
	base, err := New(Options{Capacity: 256, SatWords: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	d := Synchronized(base)
	for i := 0; i < 200; i++ {
		if err := d.Insert(Word(i), []Word{Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Word((g*31 + i) % 200)
				switch i % 4 {
				case 0:
					d.Insert(k, []Word{k * 2})
				case 3:
					d.Insert(k, []Word{k})
				default:
					if sat, ok := d.Lookup(k); ok && sat[0] != k && sat[0] != k*2 {
						panic("torn read")
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if d.Len() != 200 {
		t.Errorf("Len = %d after churn, want 200", d.Len())
	}
	if d.IOStats().ParallelIOs == 0 {
		t.Error("no I/O recorded")
	}
}

// Package pdmdict is a Go implementation of the deterministic
// dictionaries for the parallel disk model from
//
//	M. Berger, E. R. Hansen, R. Pagh, M. Pǎtraşcu, M. Ružić,
//	P. Tiedemann. "Deterministic load balancing and dictionaries in
//	the parallel disk model." SPAA 2006.
//
// The package exposes the paper's structures over a simulated parallel
// disk machine (D disks × blocks of B words, costs counted in parallel
// I/Os):
//
//   - New / Dict — the fully dynamic deterministic dictionary:
//     worst-case constant I/Os per operation, unbounded growth via
//     global rebuilding, deletions. This is the flagship structure.
//   - NewBasic / Basic — Section 4.1: one-probe lookups (1 parallel
//     I/O), two-probe updates, satellite bandwidth O(B·D/log n) in the
//     k = d/2 configuration.
//   - BuildStatic / Static — Theorem 6: the one-probe static dictionary
//     with construction cost proportional to sorting.
//   - NewDynamic / Dynamic — Theorem 7: bounded-capacity dynamic
//     dictionary, 1 I/O unsuccessful searches, 1+ɛ average successful
//     searches, 2+ɛ average updates.
//
// The randomized baselines the paper compares against (Figure 1) are
// also provided: NewHashTable, NewCuckoo, NewTwoLevel, and NewBTree.
// Everything is deterministic given the Options' Seed; there is no
// global randomness.
package pdmdict

import (
	"fmt"

	"pdmdict/internal/btree"
	"pdmdict/internal/bucket"
	"pdmdict/internal/core"
	"pdmdict/internal/hashing"
	"pdmdict/internal/heal"
	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// Word is one data item of the parallel disk model — "sufficiently
// large to hold a pointer value or a key value". Keys and satellite
// data are words.
type Word = uint64

// Record pairs a key with its satellite data.
type Record struct {
	Key Word
	Sat []Word
}

// IOStats summarizes a structure's disk traffic.
type IOStats struct {
	// ParallelIOs counts parallel I/O steps, the model's cost measure.
	ParallelIOs int64
	// BlockReads and BlockWrites count individual block transfers.
	BlockReads  int64
	BlockWrites int64
}

func fromPDM(s pdm.Stats) IOStats {
	return IOStats{ParallelIOs: s.ParallelIOs, BlockReads: s.BlockReads, BlockWrites: s.BlockWrites}
}

// Dictionary is the interface every structure in this package satisfies.
type Dictionary interface {
	// Lookup returns a copy of key's satellite data and whether the key
	// is present.
	Lookup(key Word) ([]Word, bool)
	// Contains reports whether key is present.
	Contains(key Word) bool
	// Insert stores (key, sat), replacing any existing satellite.
	Insert(key Word, sat []Word) error
	// Delete removes key, reporting whether it was present.
	Delete(key Word) bool
	// Len returns the number of stored keys.
	Len() int
	// IOStats returns the accumulated disk traffic.
	IOStats() IOStats
}

// Options configures a dictionary.
type Options struct {
	// Capacity is the (initial) maximum number of keys. Required.
	Capacity int
	// SatWords is the satellite size per key, in words.
	SatWords int
	// Degree is the expander degree d. Structures with a membership
	// sub-dictionary (Dict, Dynamic, Static case (a)) occupy 2d disks;
	// the others occupy d. 0 defaults to 20.
	Degree int
	// BlockSize is B in words; 0 defaults to 64.
	BlockSize int
	// Epsilon is the Theorem 7 performance parameter for Dynamic and
	// Dict; 0 defaults to 0.5.
	Epsilon float64
	// Universe is the key universe size u; 0 defaults to 2^63.
	Universe uint64
	// Seed makes the whole structure deterministic; equal seeds give
	// bit-identical behaviour.
	Seed uint64
}

func (o Options) degree() int {
	if o.Degree == 0 {
		return 20
	}
	return o.Degree
}

func (o Options) blockSize() int {
	if o.BlockSize == 0 {
		return 64
	}
	return o.BlockSize
}

// machineStats wraps a machine for the IOStats methods.
type machineStats struct{ m *pdm.Machine }

// IOStats returns the accumulated disk traffic.
func (s machineStats) IOStats() IOStats { return fromPDM(s.m.Stats()) }

// ResetIOStats zeroes the counters (data is untouched).
func (s machineStats) ResetIOStats() { s.m.ResetStats() }

// Machine returns the underlying simulated machine, for advanced
// instrumentation.
func (s machineStats) Machine() *pdm.Machine { return s.m }

// SetHook attaches an observability hook to the underlying machine; a
// nil hook detaches (the default, with near-zero overhead). Sinks and
// metrics collectors live in internal/obs.
func (s machineStats) SetHook(h IOHook) { s.m.SetHook(h) }

// SetFaultInjector attaches a fault injector to the underlying machine;
// nil detaches (the default). Fault events flow through the hook under
// "fault.*" tags.
func (s machineStats) SetFaultInjector(fi FaultInjector) { s.m.SetFaultInjector(fi) }

// Degraded reports whether the machine has observed a data-threatening
// fault (fail-stop, transient, corruption, or checksum mismatch — not a
// stall) since the flag was last cleared, or any disk is currently not
// Healthy. It is a derived view of the per-disk health state machine;
// Health gives the full picture.
func (s machineStats) Degraded() bool { return s.m.Degraded() }

// ClearDegraded resets the degraded flag and returns every disk to the
// Healthy state, e.g. after a successful repair and clean scrub.
func (s machineStats) ClearDegraded() { s.m.ClearDegraded() }

// Health returns a snapshot of the machine's per-disk health state
// machine (Healthy → Suspect → Failed → Repairing → Healthy) and its
// recovery counters (retries, hedged reads, modeled backoff steps,
// repair chunks). All transitions are driven by the deterministic
// parallel-I/O step counter, never wall time.
func (s machineStats) Health() HealthReport { return s.m.Health() }

// DiskState returns one disk's current health state.
func (s machineStats) DiskState(disk int) HealthState { return s.m.DiskState(disk) }

// FaultCount returns the number of fault events observed, stalls
// included.
func (s machineStats) FaultCount() int64 { return s.m.FaultCount() }

// MintOp mints an operation token for one logical operation issued by
// client over keys keys, carrying the given registered root tag (see
// OpCtx). IDs come from a per-machine counter, so equal workloads mint
// equal IDs and traces stay deterministic.
func (s machineStats) MintOp(client, keys int, tag string) OpCtx {
	return obs.MintOp(s.m, client, keys, tag)
}

// Addr names one block: a disk index and a block index on that disk.
type Addr = pdm.Addr

// IOEvent is one traced batch: op kind, span tag, addresses, and cost.
// The Addrs slice is only valid during the hook call — sinks that
// retain events must copy it.
type IOEvent = pdm.Event

// IOHook receives one IOEvent per non-empty batch a machine executes.
// Implementations must be safe for concurrent use and must not call
// back into the machine's batch methods.
type IOHook = pdm.Hook

// OpCtx is an explicit operation token: a machine-unique operation ID,
// the issuing client's ID, and the operation's registered root tag.
// Threading a token through the *Ctx entry points (LookupCtx,
// InsertCtx, ...) stamps every batch, fault, and span event the
// operation causes with the token and charges the operation's exact
// parallel I/O cost to it — per-operation accounting that stays exact
// under arbitrary concurrency, where the legacy span-stack attribution
// is only approximate. The plain entry points mint an anonymous token
// (client 0) internally, so every public operation is accounted either
// way.
//
// Mint one token per logical operation with MintOp and do not reuse it;
// the token's counters (Op.Steps and friends) can be read at any time,
// including while the operation is in flight.
type OpCtx = obs.OpCtx

// BatchLookuper is satisfied by the structures that can answer many
// lookups in merged read rounds (Dict, Basic, Dynamic, OneProbe, and
// SyncDict over any of them): the keys' probe addresses are
// de-duplicated and fetched in one BatchRead per round, so b concurrent
// queries cost the deepest per-disk queue instead of b sequential
// probes. Use a type assertion when holding a Dictionary:
//
//	if bl, ok := dict.(BatchLookuper); ok { sats, oks := bl.LookupBatch(keys) }
type BatchLookuper interface {
	// LookupBatch returns, positionally aligned with keys, a copy of
	// each key's satellite data and whether it is present.
	LookupBatch(keys []Word) ([][]Word, []bool)
}

// Hooked is satisfied by every structure in this package; it attaches
// an observability hook to the structure's machine(s). Use a type
// assertion when holding a Dictionary:
//
//	if h, ok := dict.(Hooked); ok { h.SetHook(collector) }
type Hooked interface {
	SetHook(IOHook)
}

// ---------------------------------------------------------------------
// Fault injection.

// FaultInjector decides, per block access, whether a fault fires. It is
// consulted by the fault-aware batch paths (TryBatchRead/TryBatchWrite,
// which back LookupTry, Repair, and Scrub); the plain Lookup/Insert
// paths are fault-oblivious. Implementations must not call back into
// the machine. A deterministic, seedable implementation lives in
// internal/fault and is used by the fskv and pdmbench commands; any
// type returning Fault values works here.
type FaultInjector = pdm.FaultInjector

// Fault is one injected fault: its kind, the bit to flip for
// FaultCorrupt, and the extra parallel-I/O steps for FaultStall.
type Fault = pdm.Fault

// FaultKind enumerates the fault taxonomy.
type FaultKind = pdm.FaultKind

// The fault kinds: no fault, fail-stop disk (access denied, data
// intact), transient error (retry may succeed), silent bit corruption
// (caught by block checksums on read), and a stall charged as extra
// parallel I/O steps.
const (
	FaultNone      = pdm.FaultNone
	FaultFailStop  = pdm.FaultFailStop
	FaultTransient = pdm.FaultTransient
	FaultCorrupt   = pdm.FaultCorrupt
	FaultStall     = pdm.FaultStall
)

// Sentinel errors reported by the fault-aware paths; match with
// errors.Is. LookupTry wraps these when a lookup is inconclusive.
var (
	ErrDiskFailed = pdm.ErrDiskFailed
	ErrTransient  = pdm.ErrTransient
	ErrChecksum   = pdm.ErrChecksum
)

// ---------------------------------------------------------------------
// Health and recovery.

// HealthState is one disk's position in the health state machine; see
// Health.
type HealthState = pdm.HealthState

// The health states: Healthy (no evidence against the disk), Suspect (a
// burst of transient errors within the deterministic step window),
// Failed (fail-stop, corruption, or checksum mismatch observed), and
// Repairing (a repair supervisor has claimed the disk).
const (
	DiskHealthy   = pdm.Healthy
	DiskSuspect   = pdm.Suspect
	DiskFailed    = pdm.Failed
	DiskRepairing = pdm.Repairing
)

// HealthReport is a consistent snapshot of every disk's health plus the
// machine-wide recovery counters (retry batches, hedged reads, modeled
// backoff steps, repair chunks and rows).
type HealthReport = pdm.HealthReport

// DiskHealth is one disk's row of a HealthReport.
type DiskHealth = pdm.DiskHealth

// RetryPolicy governs how the fault-aware paths (LookupTry, Repair,
// Scrub) recover from transient errors: how many retry batches to
// issue, how much modeled backoff (charged as parallel-I/O steps, so it
// shows up in the cost accounting — never wall time) to insert between
// them, and whether to hedge retried reads against Suspect or stalling
// disks with a duplicate request. The zero value is the historical
// default: three immediate retries, no backoff, no hedging.
type RetryPolicy = pdm.RetryPolicy

// DefaultRetryPolicy returns the explicit form of the zero-value
// policy. Installing it changes nothing, byte for byte.
func DefaultRetryPolicy() RetryPolicy { return pdm.DefaultRetryPolicy() }

// ---------------------------------------------------------------------
// Fully dynamic dictionary (the flagship).

// Dict is the fully dynamic deterministic dictionary: Theorem 7
// structures under worst-case global rebuilding. Operations cost a
// constant number of parallel I/Os in the worst case; capacity grows
// without bound; deletions are supported.
type Dict struct {
	d *core.Dict
}

// New creates a fully dynamic dictionary.
func New(opts Options) (*Dict, error) {
	d, err := core.NewDict(core.DictConfig{
		InitialCapacity: opts.Capacity,
		SatWords:        opts.SatWords,
		Degree:          opts.Degree,
		BlockSize:       opts.BlockSize,
		Epsilon:         opts.Epsilon,
		Universe:        opts.Universe,
		Seed:            opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Dict{d: d}, nil
}

// NewOneProbeUnbounded creates a fully dynamic dictionary whose bounded
// building block is the Section 6 one-probe structure instead of the
// Theorem 7 cascade: lookups cost exactly one parallel I/O even while a
// global rebuild is in flight (the draining and filling structures
// occupy disjoint disks and answer in the same parallel step), updates
// a worst-case constant — at twice the disks of New.
func NewOneProbeUnbounded(opts Options) (*Dict, error) {
	d, err := core.NewDict(core.DictConfig{
		InitialCapacity: opts.Capacity,
		SatWords:        opts.SatWords,
		Degree:          opts.Degree,
		BlockSize:       opts.BlockSize,
		Universe:        opts.Universe,
		OneProbe:        true,
		Seed:            opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Dict{d: d}, nil
}

// MintOp mints an operation token (see OpCtx) for one logical operation
// issued by client over keys keys, carrying the given registered root
// tag. The Dict owns its own ID counter so tokens stay unique across
// rebuild generations and both live machines.
func (d *Dict) MintOp(client, keys int, tag string) OpCtx {
	return OpCtx{Op: d.d.MintOp(client, keys), Tag: tag}
}

// Lookup returns a copy of key's satellite data and whether it is present.
func (d *Dict) Lookup(key Word) ([]Word, bool) { return d.d.LookupOp(nil, key) }

// LookupCtx is Lookup attributed to the operation token c (see OpCtx).
func (d *Dict) LookupCtx(c OpCtx, key Word) ([]Word, bool) { return d.d.LookupOp(c.Op, key) }

// Contains reports whether key is present.
func (d *Dict) Contains(key Word) bool { return d.d.Contains(key) }

// Insert stores (key, sat), replacing any existing satellite.
func (d *Dict) Insert(key Word, sat []Word) error { return d.d.InsertOp(nil, key, sat) }

// InsertCtx is Insert attributed to the operation token c.
func (d *Dict) InsertCtx(c OpCtx, key Word, sat []Word) error { return d.d.InsertOp(c.Op, key, sat) }

// Delete removes key, reporting whether it was present.
func (d *Dict) Delete(key Word) bool { return d.d.DeleteOp(nil, key) }

// DeleteCtx is Delete attributed to the operation token c.
func (d *Dict) DeleteCtx(c OpCtx, key Word) bool { return d.d.DeleteOp(c.Op, key) }

// Len returns the number of stored keys.
func (d *Dict) Len() int { return d.d.Len() }

// LookupBatch resolves many keys as one batched operation — each
// underlying structure merges the keys' probes into shared read rounds,
// and during a migration the draining structure is consulted only for
// the keys the successor misses. Results align positionally with keys.
func (d *Dict) LookupBatch(keys []Word) ([][]Word, []bool) { return d.d.LookupBatchOp(nil, keys) }

// LookupBatchCtx is LookupBatch attributed to the operation token c:
// one token covers the whole batch, and the ledger amortizes its cost
// over the batch's keys.
func (d *Dict) LookupBatchCtx(c OpCtx, keys []Word) ([][]Word, []bool) {
	return d.d.LookupBatchOp(c.Op, keys)
}

// IOStats returns the accumulated traffic under the wrapper's parallel
// cost model (concurrent structures on disjoint disks cost the max, not
// the sum).
func (d *Dict) IOStats() IOStats {
	s := d.d.Stats()
	return IOStats{ParallelIOs: s.ParallelIOs}
}

// SetHook attaches an observability hook to the machines of both live
// structures and to every machine created by future rebuilds, so traces
// span generations. A nil hook detaches. Not safe to call concurrently
// with operations.
func (d *Dict) SetHook(h IOHook) { d.d.SetHook(h) }

// SetFaultInjector attaches a fault injector to the machines of both
// live structures and to every machine created by future rebuilds. A
// nil injector detaches. Not safe to call concurrently with operations.
func (d *Dict) SetFaultInjector(fi FaultInjector) { d.d.SetFaultInjector(fi) }

// Degraded reports whether either live structure's machine has observed
// a data-threatening fault since its flag was last cleared.
func (d *Dict) Degraded() bool { return d.d.Degraded() }

// WorstOpIOs returns the largest per-key operation cost observed —
// ⌈steps/keys⌉ over every operation, batched or single-key — the
// worst-case guarantee that distinguishes this structure from hashing.
// Attribution is exact even under concurrent callers: every operation
// carries a token charged precisely its own batches.
func (d *Dict) WorstOpIOs() int64 { return d.d.Stats().WorstOp }

// Ops returns the number of operations served.
func (d *Dict) Ops() int64 { return d.d.Stats().Ops }

// Rebuilds returns the number of completed global rebuilds.
func (d *Dict) Rebuilds() int64 { return d.d.Stats().Rebuilds }

// ---------------------------------------------------------------------
// Section 4.1 basic dictionary.

// Basic is the Section 4.1 load-balancing dictionary: fixed capacity,
// one-probe lookups, two-probe updates.
type Basic struct {
	machineStats
	d *core.BasicDict
}

// BasicOptions extends Options with the Section 4.1 knobs.
type BasicOptions struct {
	Options
	// K is the number of satellite fragments per key: 1 (default) or up
	// to d/2 for the bandwidth variant.
	K int
	// BucketBlocks is the bucket footprint in blocks; 1 (default) gives
	// one-probe buckets.
	BucketBlocks int
	// HeadModel runs the dictionary in the parallel disk *head* model
	// (Section 5's closing remark): buckets are laid out round-robin and
	// the machine allows any D blocks per parallel I/O, so no striped
	// expander is needed.
	HeadModel bool
	// Replicas stores that many full copies of every record, each on a
	// distinct disk, instead of splitting satellites into fragments: the
	// dictionary then tolerates Replicas−1 fail-stop disk failures
	// (LookupTry answers from any surviving copy, and Repair rebuilds a
	// failed disk from the others). 0 or 1 disables replication.
	// Mutually exclusive with K and HeadModel; requires Replicas ≤ d and
	// d ≤ 56.
	Replicas int
}

// NewBasic creates a Section 4.1 dictionary on d disks.
func NewBasic(opts BasicOptions) (*Basic, error) {
	model := pdm.ParallelDisk
	if opts.HeadModel {
		model = pdm.DiskHead
	}
	cfg := core.BasicConfig{
		Capacity:     opts.Capacity,
		SatWords:     opts.SatWords,
		K:            opts.K,
		BucketBlocks: opts.BucketBlocks,
		HeadModel:    opts.HeadModel,
		Universe:     opts.Universe,
		Seed:         opts.Seed,
	}
	if opts.Replicas > 1 {
		if opts.K != 0 && opts.K != opts.Replicas {
			return nil, fmt.Errorf("pdmdict: Replicas and K are mutually exclusive")
		}
		cfg.K = opts.Replicas
		cfg.Replicate = true
	}
	m := pdm.NewMachine(pdm.Config{D: opts.degree(), B: opts.blockSize(), Model: model})
	d, err := core.NewBasic(m, cfg)
	if err != nil {
		return nil, err
	}
	return &Basic{machineStats{m}, d}, nil
}

// Lookup returns a copy of key's satellite data and whether it is
// present; it costs one parallel I/O.
func (b *Basic) Lookup(key Word) ([]Word, bool) {
	return b.LookupCtx(b.MintOp(0, 1, obs.TagLookup), key)
}

// LookupCtx is Lookup attributed to the operation token c (see OpCtx).
func (b *Basic) LookupCtx(c OpCtx, key Word) ([]Word, bool) { return b.d.LookupOp(c.Op, key) }

// Contains reports whether key is present (one parallel I/O).
func (b *Basic) Contains(key Word) bool {
	_, ok := b.Lookup(key)
	return ok
}

// Insert stores (key, sat) in two parallel I/Os (read + write).
func (b *Basic) Insert(key Word, sat []Word) error {
	return b.InsertCtx(b.MintOp(0, 1, obs.TagInsert), key, sat)
}

// InsertCtx is Insert attributed to the operation token c.
func (b *Basic) InsertCtx(c OpCtx, key Word, sat []Word) error { return b.d.InsertOp(c.Op, key, sat) }

// Delete removes key, reporting whether it was present.
func (b *Basic) Delete(key Word) bool {
	return b.DeleteCtx(b.MintOp(0, 1, obs.TagDelete), key)
}

// DeleteCtx is Delete attributed to the operation token c.
func (b *Basic) DeleteCtx(c OpCtx, key Word) bool { return b.d.DeleteOp(c.Op, key) }

// Len returns the number of stored keys.
func (b *Basic) Len() int { return b.d.Len() }

// MaxLoad returns the maximum bucket load (diagnostics; Lemma 3 bounds
// it).
func (b *Basic) MaxLoad() int { return b.d.MaxLoad() }

// BulkLoad fills an empty dictionary with the given records at external
// sort cost — far cheaper than one Insert per key. Keys must be
// distinct; the resulting structure is identical to what the same
// inserts would have produced.
func (b *Basic) BulkLoad(recs []Record) error {
	in := make([]bucket.Record, len(recs))
	for i, r := range recs {
		in[i] = bucket.Record{Key: r.Key, Sat: r.Sat}
	}
	return b.d.BulkLoad(in, b.d.BlocksPerDisk(), 8)
}

// LookupBatch resolves many keys in one batched read, de-duplicating
// shared blocks: a burst of hot-key lookups (the paper's webmail
// workload) costs far fewer parallel I/Os than issuing them singly.
// Results align positionally with keys.
func (b *Basic) LookupBatch(keys []Word) ([][]Word, []bool) {
	return b.LookupBatchCtx(b.MintOp(0, len(keys), obs.TagLookup), keys)
}

// LookupBatchCtx is LookupBatch attributed to the operation token c:
// one token covers the whole batch.
func (b *Basic) LookupBatchCtx(c OpCtx, keys []Word) ([][]Word, []bool) {
	return b.d.LookupBatchOp(c.Op, keys)
}

// LookupTry is the fault-aware Lookup: it goes through the machine's
// checked read path, retries transient errors, and with Replicas ≥ 2
// answers from any surviving copy. A non-nil error means the lookup was
// inconclusive — the key was not found but some candidate bucket was
// unreadable — never that the key is absent.
//
//lint:pdm-allow opctx: fault-aware Try path stays on the legacy span path
func (b *Basic) LookupTry(key Word) ([]Word, bool, error) { return b.d.LookupTry(key) }

// LookupTryCtx is LookupTry attributed to the operation token c: the
// probe, every retry batch, and any modeled backoff are charged to the
// token, so recovery I/O is accounted to the operation that needed it.
func (b *Basic) LookupTryCtx(c OpCtx, key Word) ([]Word, bool, error) {
	return b.d.LookupTryOp(c.Op, key)
}

// LookupTryBatch is the fault-aware LookupBatch: one merged,
// de-duplicated read round through the checked path, governed by the
// retry policy. A non-nil error means at least one key was inconclusive
// (its ok entry is then false) — never that a key is wrongly absent.
//
//lint:pdm-allow opctx: fault-aware Try path stays on the legacy span path
func (b *Basic) LookupTryBatch(keys []Word) ([][]Word, []bool, error) {
	return b.d.LookupTryBatch(keys)
}

// LookupTryBatchCtx is LookupTryBatch attributed to the operation token
// c; one token covers the whole batch.
func (b *Basic) LookupTryBatchCtx(c OpCtx, keys []Word) ([][]Word, []bool, error) {
	return b.d.LookupTryBatchOp(c.Op, keys)
}

// ContainsTry is the fault-aware Contains; see LookupTry.
func (b *Basic) ContainsTry(key Word) (bool, error) { return b.d.ContainsTry(key) }

// SetRetryPolicy installs the transient-error recovery policy used by
// LookupTry, LookupTryBatch, Repair, and Scrub. The zero value (and
// DefaultRetryPolicy()) reproduce the historical behavior exactly —
// same batches, same trace bytes.
func (b *Basic) SetRetryPolicy(p RetryPolicy) { b.d.SetRetryPolicy(p) }

// RetryPolicy returns the installed recovery policy.
func (b *Basic) RetryPolicy() RetryPolicy { return b.d.RetryPolicy() }

// Repair rebuilds every bucket of the given disk from the surviving
// replicas on other disks, then rewrites the disk; it requires
// Replicas ≥ 2. After a fail-stop disk is healed (the injector stops
// failing it), Repair restores its contents bit-identically.
func (b *Basic) Repair(disk int) error { return b.d.Repair(disk) }

// Scrub reads every bucket through the checked path and returns the
// addresses that failed (checksum mismatch or unreadable). A clean
// scrub clears the machine's degraded flag.
func (b *Basic) Scrub() []Addr { return b.d.Scrub() }

// ScrubDisk verifies one disk's stripe with checked reads and returns
// the addresses that failed. A clean pass returns ONLY that disk to the
// Healthy state (pdm.MarkHealthy) — unlike the machine-wide Scrub it
// can never erase another disk's Failed record, so per-disk health
// survives partial recoveries (heal+repair of one disk while another is
// still down).
func (b *Basic) ScrubDisk(disk int) []Addr {
	var bad []Addr
	for row := 0; ; {
		chunk, next, done := b.d.ScrubRange(nil, disk, row, 64)
		bad = append(bad, chunk...)
		row = next
		if done {
			break
		}
	}
	if len(bad) == 0 {
		b.m.MarkHealthy(disk)
	}
	return bad
}

// SelfHeal starts the background repair supervisor: a goroutine that
// sleeps on the machine's health notifications and, whenever a disk
// becomes repairable (Failed but answering again, or Suspect), rebuilds
// and verifies it in bounded chunks interleaved with live traffic,
// returning it to Healthy without any outside help. Requires
// Replicas ≥ 2 for actual rebuilds; Suspect disks are verified by scrub
// alone.
//
// wake nudges the supervisor to re-examine disk health without waiting
// for a machine health notification — lock-free and safe from any
// goroutine, including an obs.AlertListener inside a hook dispatch
// (wire a degraded-capacity alert to it). The stop function halts the
// supervisor and blocks until it has exited; call it before discarding
// the structure.
func (b *Basic) SelfHeal() (wake, stop func()) {
	s := heal.New(b.m, b.d, heal.Config{})
	s.Start()
	return s.Wake, s.Stop
}

// ---------------------------------------------------------------------
// Direct addressing (the tiny-universe special case).

// Direct is simple direct addressing — the structure the paper's
// Theorem 6 discussion recommends "when the universe is tiny": every
// key of [0, Universe) owns a fixed slot, giving 1-I/O lookups and
// 2-I/O updates with zero machinery, at Θ(u) space. Use it when u is
// within a constant factor of n; the expander structures exist for the
// regime u ≫ n.
type Direct struct {
	machineStats
	d *core.DirectDict
}

// NewDirect creates a direct-addressed dictionary; opts.Universe is the
// (small) universe size and must be set.
func NewDirect(opts Options) (*Direct, error) {
	if opts.Universe == 0 {
		return nil, fmt.Errorf("pdmdict: NewDirect requires Options.Universe")
	}
	m := pdm.NewMachine(pdm.Config{D: opts.degree(), B: opts.blockSize()})
	d, err := core.NewDirect(m, opts.Universe, opts.SatWords)
	if err != nil {
		return nil, err
	}
	return &Direct{machineStats{m}, d}, nil
}

// Lookup returns a copy of key's satellite data and whether it is
// present (one parallel I/O).
//
//lint:pdm-allow opctx: direct addressing special case; stays on the legacy span path
func (d *Direct) Lookup(key Word) ([]Word, bool) { return d.d.Lookup(key) }

// Contains reports whether key is present.
func (d *Direct) Contains(key Word) bool { return d.d.Contains(key) }

// Insert stores (key, sat) in two parallel I/Os.
//
//lint:pdm-allow opctx: direct addressing special case; stays on the legacy span path
func (d *Direct) Insert(key Word, sat []Word) error { return d.d.Insert(key, sat) }

// Delete removes key, reporting whether it was present.
//
//lint:pdm-allow opctx: direct addressing special case; stays on the legacy span path
func (d *Direct) Delete(key Word) bool { return d.d.Delete(key) }

// Len returns the number of stored keys.
func (d *Direct) Len() int { return d.d.Len() }

// ---------------------------------------------------------------------
// Theorem 6 static dictionary.

// Static is the one-probe static dictionary of Theorem 6.
type Static struct {
	machineStats
	d *core.StaticDict
}

// StaticOptions extends Options with the Theorem 6 knobs.
type StaticOptions struct {
	Options
	// CaseA selects the Theorem 6(a) layout (membership dictionary +
	// pointer-chained fields on 2d disks); the default is case (b)
	// (identifier fields on d disks).
	CaseA bool
}

// BuildStatic constructs the dictionary over the given records.
func BuildStatic(opts StaticOptions, recs []Record) (*Static, error) {
	disks := opts.degree()
	cs := core.CaseB
	if opts.CaseA {
		cs = core.CaseA
		disks *= 2
	}
	m := pdm.NewMachine(pdm.Config{D: disks, B: opts.blockSize()})
	in := make([]bucket.Record, len(recs))
	for i, r := range recs {
		in[i] = bucket.Record{Key: r.Key, Sat: r.Sat}
	}
	d, err := core.BuildStatic(m, core.StaticConfig{
		SatWords: opts.SatWords,
		Case:     cs,
		Universe: opts.Universe,
		Seed:     opts.Seed,
	}, in)
	if err != nil {
		return nil, err
	}
	return &Static{machineStats{m}, d}, nil
}

// Lookup returns a copy of key's satellite data and whether it is
// present, in exactly one parallel I/O.
//
//lint:pdm-allow opctx: static structure; stays on the legacy span path
func (s *Static) Lookup(key Word) ([]Word, bool) { return s.d.Lookup(key) }

// Contains reports whether key is present (one parallel I/O).
func (s *Static) Contains(key Word) bool { return s.d.Contains(key) }

// Insert is unsupported: the structure is static (use Dynamic or Dict).
//
//lint:pdm-allow opctx: static structure; stays on the legacy span path
func (s *Static) Insert(Word, []Word) error { return core.ErrFull }

// Delete is unsupported: the structure is static.
//
//lint:pdm-allow opctx: static structure; stays on the legacy span path
func (s *Static) Delete(Word) bool { return false }

// Len returns the number of stored keys.
func (s *Static) Len() int { return s.d.Len() }

// ConstructionIOs returns the parallel I/O cost of BuildStatic.
func (s *Static) ConstructionIOs() int64 { return s.d.ConstructionIOs.ParallelIOs }

// ---------------------------------------------------------------------
// Theorem 7 dynamic dictionary.

// Dynamic is the bounded-capacity dynamic dictionary of Theorem 7.
type Dynamic struct {
	machineStats
	d *core.DynamicDict
}

// NewDynamic creates a Theorem 7 dictionary on 2d disks. The theorem's
// constraint d > 6(1+1/ɛ) is enforced.
func NewDynamic(opts Options) (*Dynamic, error) {
	m := pdm.NewMachine(pdm.Config{D: 2 * opts.degree(), B: opts.blockSize()})
	d, err := core.NewDynamic(m, core.DynamicConfig{
		Capacity: opts.Capacity,
		SatWords: opts.SatWords,
		Epsilon:  opts.Epsilon,
		Universe: opts.Universe,
		Seed:     opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Dynamic{machineStats{m}, d}, nil
}

// Lookup returns a copy of key's satellite data and whether it is
// present. Unsuccessful searches cost exactly one parallel I/O;
// successful ones average at most 1+ɛ.
func (d *Dynamic) Lookup(key Word) ([]Word, bool) {
	return d.LookupCtx(d.MintOp(0, 1, obs.TagLookup), key)
}

// LookupCtx is Lookup attributed to the operation token c (see OpCtx).
func (d *Dynamic) LookupCtx(c OpCtx, key Word) ([]Word, bool) { return d.d.LookupOp(c.Op, key) }

// Contains reports whether key is present.
func (d *Dynamic) Contains(key Word) bool {
	_, ok := d.Lookup(key)
	return ok
}

// Insert stores (key, sat) in 2+ɛ parallel I/Os on average.
func (d *Dynamic) Insert(key Word, sat []Word) error {
	return d.InsertCtx(d.MintOp(0, 1, obs.TagInsert), key, sat)
}

// InsertCtx is Insert attributed to the operation token c.
func (d *Dynamic) InsertCtx(c OpCtx, key Word, sat []Word) error {
	return d.d.InsertOp(c.Op, key, sat)
}

// Delete removes key, reporting whether it was present.
func (d *Dynamic) Delete(key Word) bool {
	return d.DeleteCtx(d.MintOp(0, 1, obs.TagDelete), key)
}

// DeleteCtx is Delete attributed to the operation token c.
func (d *Dynamic) DeleteCtx(c OpCtx, key Word) bool { return d.d.DeleteOp(c.Op, key) }

// Len returns the number of stored keys.
func (d *Dynamic) Len() int { return d.d.Len() }

// LevelCounts returns the per-level occupancy of the retrieval cascade.
func (d *Dynamic) LevelCounts() []int { return d.d.LevelCounts() }

// LookupBatch resolves many keys in at most two batched reads: one for
// every key's membership buckets and first-array fields, one shared by
// the (rare) keys resident in deeper arrays. Results align positionally
// with keys.
func (d *Dynamic) LookupBatch(keys []Word) ([][]Word, []bool) {
	return d.LookupBatchCtx(d.MintOp(0, len(keys), obs.TagLookup), keys)
}

// LookupBatchCtx is LookupBatch attributed to the operation token c:
// one token covers the whole batch.
func (d *Dynamic) LookupBatchCtx(c OpCtx, keys []Word) ([][]Word, []bool) {
	return d.d.LookupBatchOp(c.Op, keys)
}

// ---------------------------------------------------------------------
// Section 6 (Open Problems) exploration.

// OneProbe is an experimental structure exploring the paper's Open
// Problems section: full-bandwidth lookups in exactly ONE parallel I/O
// *and* updates in exactly two, achieved by giving each level of the
// Section 4.3 cascade its own disk group (a constant-factor disk
// increase, as the paper permits elsewhere). What remains non-constant
// is the failure path: when no level can host a chain the structure
// must be rebuilt (Insert returns an error), the caveat the paper's
// "this makes the time for updates non-constant" remark anticipates.
type OneProbe struct {
	machineStats
	d *core.OneProbeDict
}

// OneProbeOptions extends Options with the recursion depth.
type OneProbeOptions struct {
	Options
	// Levels is the cascade depth c; the structure occupies
	// (Levels+1)·Degree disks. 0 defaults to 3.
	Levels int
}

// NewOneProbe creates the Section 6 structure.
func NewOneProbe(opts OneProbeOptions) (*OneProbe, error) {
	levels := opts.Levels
	if levels == 0 {
		levels = 3
	}
	m := pdm.NewMachine(pdm.Config{D: (levels + 1) * opts.degree(), B: opts.blockSize()})
	d, err := core.NewOneProbe(m, core.OneProbeConfig{
		Capacity: opts.Capacity,
		SatWords: opts.SatWords,
		Levels:   levels,
		Universe: opts.Universe,
		Seed:     opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &OneProbe{machineStats{m}, d}, nil
}

// Lookup returns a copy of key's satellite data and whether it is
// present — always exactly one parallel I/O.
func (o *OneProbe) Lookup(key Word) ([]Word, bool) {
	return o.LookupCtx(o.MintOp(0, 1, obs.TagLookup), key)
}

// LookupCtx is Lookup attributed to the operation token c (see OpCtx).
func (o *OneProbe) LookupCtx(c OpCtx, key Word) ([]Word, bool) { return o.d.LookupOp(c.Op, key) }

// Contains reports whether key is present (one parallel I/O).
func (o *OneProbe) Contains(key Word) bool {
	_, ok := o.Lookup(key)
	return ok
}

// Insert stores (key, sat) in exactly two parallel I/Os.
func (o *OneProbe) Insert(key Word, sat []Word) error {
	return o.InsertCtx(o.MintOp(0, 1, obs.TagInsert), key, sat)
}

// InsertCtx is Insert attributed to the operation token c.
func (o *OneProbe) InsertCtx(c OpCtx, key Word, sat []Word) error {
	return o.d.InsertOp(c.Op, key, sat)
}

// Delete removes key in exactly two parallel I/Os.
func (o *OneProbe) Delete(key Word) bool {
	return o.DeleteCtx(o.MintOp(0, 1, obs.TagDelete), key)
}

// DeleteCtx is Delete attributed to the operation token c.
func (o *OneProbe) DeleteCtx(c OpCtx, key Word) bool { return o.d.DeleteOp(c.Op, key) }

// Len returns the number of stored keys.
func (o *OneProbe) Len() int { return o.d.Len() }

// LevelCounts returns the per-level occupancy.
func (o *OneProbe) LevelCounts() []int { return o.d.LevelCounts() }

// LookupBatch resolves many keys in ONE batched read — the single-probe
// guarantee extends to whole batches, since every key's membership and
// field blocks are merged into the same parallel I/O. Results align
// positionally with keys.
func (o *OneProbe) LookupBatch(keys []Word) ([][]Word, []bool) {
	return o.LookupBatchCtx(o.MintOp(0, len(keys), obs.TagLookup), keys)
}

// LookupBatchCtx is LookupBatch attributed to the operation token c:
// one token covers the whole batch.
func (o *OneProbe) LookupBatchCtx(c OpCtx, keys []Word) ([][]Word, []bool) {
	return o.d.LookupBatchOp(c.Op, keys)
}

// ---------------------------------------------------------------------
// Baselines (Figure 1 comparators).

// HashTable is the striped bucketed hash table ("Hashing … no overflow"
// and, with default sizing, the [7] stand-in).
type HashTable struct {
	machineStats
	d *hashing.Table
}

// NewHashTable creates a hashing baseline on Degree disks.
func NewHashTable(opts Options) (*HashTable, error) {
	m := pdm.NewMachine(pdm.Config{D: opts.degree(), B: opts.blockSize()})
	d, err := hashing.NewTable(m, hashing.TableConfig{
		Capacity: opts.Capacity,
		SatWords: opts.SatWords,
		Seed:     opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &HashTable{machineStats{m}, d}, nil
}

// Lookup returns a copy of key's satellite data and whether it is present.
//
//lint:pdm-allow opctx: baseline comparator; stays on the legacy span path by design
func (h *HashTable) Lookup(key Word) ([]Word, bool) { return h.d.Lookup(key) }

// Contains reports whether key is present.
func (h *HashTable) Contains(key Word) bool { return h.d.Contains(key) }

// Insert stores (key, sat).
//
//lint:pdm-allow opctx: baseline comparator; stays on the legacy span path by design
func (h *HashTable) Insert(key Word, sat []Word) error { return h.d.Insert(key, sat) }

// Delete removes key, reporting whether it was present.
//
//lint:pdm-allow opctx: baseline comparator; stays on the legacy span path by design
func (h *HashTable) Delete(key Word) bool { return h.d.Delete(key) }

// Len returns the number of stored keys.
func (h *HashTable) Len() int { return h.d.Len() }

// Cuckoo is cuckoo hashing [13] in the parallel disk model.
type Cuckoo struct {
	machineStats
	d *hashing.Cuckoo
}

// NewCuckoo creates the cuckoo baseline on Degree disks (must be even).
func NewCuckoo(opts Options) (*Cuckoo, error) {
	m := pdm.NewMachine(pdm.Config{D: opts.degree(), B: opts.blockSize()})
	d, err := hashing.NewCuckoo(m, hashing.CuckooConfig{
		Capacity: opts.Capacity,
		SatWords: opts.SatWords,
		Seed:     opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Cuckoo{machineStats{m}, d}, nil
}

// Lookup returns a copy of key's satellite data and whether it is
// present, in exactly one parallel I/O.
//
//lint:pdm-allow opctx: baseline comparator; stays on the legacy span path by design
func (c *Cuckoo) Lookup(key Word) ([]Word, bool) { return c.d.Lookup(key) }

// Contains reports whether key is present.
func (c *Cuckoo) Contains(key Word) bool { return c.d.Contains(key) }

// Insert stores (key, sat); amortized expected constant I/Os.
//
//lint:pdm-allow opctx: baseline comparator; stays on the legacy span path by design
func (c *Cuckoo) Insert(key Word, sat []Word) error { return c.d.Insert(key, sat) }

// Delete removes key, reporting whether it was present.
//
//lint:pdm-allow opctx: baseline comparator; stays on the legacy span path by design
func (c *Cuckoo) Delete(key Word) bool { return c.d.Delete(key) }

// Len returns the number of stored keys.
func (c *Cuckoo) Len() int { return c.d.Len() }

// TwoLevel is the "[7] + trick" baseline: 1+ɛ average searches with
// full-stripe bandwidth.
type TwoLevel struct {
	machineStats
	d *hashing.TwoLevel
}

// NewTwoLevel creates the two-level baseline on Degree disks.
func NewTwoLevel(opts Options) (*TwoLevel, error) {
	m := pdm.NewMachine(pdm.Config{D: opts.degree(), B: opts.blockSize()})
	d, err := hashing.NewTwoLevel(m, hashing.TwoLevelConfig{
		Capacity: opts.Capacity,
		SatWords: opts.SatWords,
		Seed:     opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &TwoLevel{machineStats{m}, d}, nil
}

// Lookup returns a copy of key's satellite data and whether it is present.
//
//lint:pdm-allow opctx: baseline comparator; stays on the legacy span path by design
func (t *TwoLevel) Lookup(key Word) ([]Word, bool) { return t.d.Lookup(key) }

// Contains reports whether key is present.
func (t *TwoLevel) Contains(key Word) bool { return t.d.Contains(key) }

// Insert stores (key, sat).
//
//lint:pdm-allow opctx: baseline comparator; stays on the legacy span path by design
func (t *TwoLevel) Insert(key Word, sat []Word) error { return t.d.Insert(key, sat) }

// Delete removes key, reporting whether it was present.
//
//lint:pdm-allow opctx: baseline comparator; stays on the legacy span path by design
func (t *TwoLevel) Delete(key Word) bool { return t.d.Delete(key) }

// Len returns the number of stored keys.
func (t *TwoLevel) Len() int { return t.d.Len() }

// BTree is the Section 1.2 baseline: Θ(log_BD n) I/Os per lookup.
type BTree struct {
	machineStats
	d *btree.Tree
}

// BTreeOptions extends Options with the node geometry.
type BTreeOptions struct {
	Options
	// Striped selects stripe-sized nodes (fanout B·D) instead of
	// block-sized nodes.
	Striped bool
}

// NewBTree creates the B-tree baseline on Degree disks.
func NewBTree(opts BTreeOptions) (*BTree, error) {
	m := pdm.NewMachine(pdm.Config{D: opts.degree(), B: opts.blockSize()})
	d, err := btree.New(m, btree.Config{SatWords: opts.SatWords, Striped: opts.Striped})
	if err != nil {
		return nil, err
	}
	return &BTree{machineStats{m}, d}, nil
}

// Lookup returns a copy of key's satellite data and whether it is
// present, in Height parallel I/Os.
//
//lint:pdm-allow opctx: baseline comparator; stays on the legacy span path by design
func (b *BTree) Lookup(key Word) ([]Word, bool) { return b.d.Lookup(key) }

// Contains reports whether key is present.
func (b *BTree) Contains(key Word) bool { return b.d.Contains(key) }

// Insert stores (key, sat).
//
//lint:pdm-allow opctx: baseline comparator; stays on the legacy span path by design
func (b *BTree) Insert(key Word, sat []Word) error { return b.d.Insert(key, sat) }

// Delete removes key, reporting whether it was present.
//
//lint:pdm-allow opctx: baseline comparator; stays on the legacy span path by design
func (b *BTree) Delete(key Word) bool { return b.d.Delete(key) }

// Len returns the number of stored keys.
func (b *BTree) Len() int { return b.d.Len() }

// Height returns the tree height — the per-lookup I/O cost.
func (b *BTree) Height() int { return b.d.Height() }

module pdmdict

go 1.22

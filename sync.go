package pdmdict

import (
	"sync"

	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// SyncDict wraps any Dictionary for concurrent use: lookups run
// concurrently with each other (readers take a shared lock; the
// simulated machine is itself thread-safe) while mutations are
// exclusive. This matches the paper's observation that the structures
// suit concurrent environments — lookups go straight to the relevant
// blocks and inserted data never moves, so coarse reader-writer locking
// is already contention-light.
type SyncDict struct {
	mu sync.RWMutex
	d  Dictionary // guarded by mu
}

// Synchronized wraps d for concurrent use. The wrapped dictionary must
// not be used directly afterwards.
func Synchronized(d Dictionary) *SyncDict { return &SyncDict{d: d} }

// Lookup returns a copy of key's satellite data and whether it is
// present. Safe for arbitrary concurrency with other lookups.
//
//lint:pdm-allow opctx: delegates to an inner Dictionary whose own entry points mint tokens
func (s *SyncDict) Lookup(key Word) ([]Word, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.d.Lookup(key)
}

// Contains reports whether key is present.
func (s *SyncDict) Contains(key Word) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.d.Contains(key)
}

// Insert stores (key, sat), replacing any existing satellite.
//
//lint:pdm-allow opctx: delegates to an inner Dictionary whose own entry points mint tokens
func (s *SyncDict) Insert(key Word, sat []Word) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Insert(key, sat)
}

// Delete removes key, reporting whether it was present.
//
//lint:pdm-allow opctx: delegates to an inner Dictionary whose own entry points mint tokens
func (s *SyncDict) Delete(key Word) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Delete(key)
}

// opMinter is satisfied by the structures SyncDict can mint batch
// tokens on behalf of (every dictionary in this package).
type opMinter interface {
	MintOp(client, keys int, tag string) OpCtx
}

// LookupBatch resolves many keys at once. When the wrapped dictionary
// is a BatchLookuper the probes are merged into shared read rounds;
// otherwise the keys are looked up one by one under the same read lock,
// threaded through ONE batch-scoped operation token (when the inner
// dictionary can mint one), so the ledger counts the loop as a single
// operation rather than len(keys) unattributed lookups.
func (s *SyncDict) LookupBatch(keys []Word) ([][]Word, []bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var c OpCtx
	if m, ok := s.d.(opMinter); ok {
		c = m.MintOp(0, len(keys), obs.TagLookup)
	}
	return s.lookupBatchLocked(c, keys)
}

// LookupBatchCtx is LookupBatch under a caller-supplied operation
// token, for parity with the concrete dictionaries.
func (s *SyncDict) LookupBatchCtx(c OpCtx, keys []Word) ([][]Word, []bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lookupBatchLocked(c, keys)
}

// lookupBatchLocked runs the batch under s.mu: the inner dictionary's
// own batch path when it has one, else the per-key fallback loop under
// a single root span of the batch token — one operation in the
// accountant's eyes, each key's probes charged to the same token.
func (s *SyncDict) lookupBatchLocked(c OpCtx, keys []Word) ([][]Word, []bool) {
	type batchCtxLookuper interface {
		LookupBatchCtx(OpCtx, []Word) ([][]Word, []bool)
	}
	if bl, ok := s.d.(batchCtxLookuper); ok && c.Op != nil {
		return bl.LookupBatchCtx(c, keys)
	}
	if bl, ok := s.d.(BatchLookuper); ok {
		return bl.LookupBatch(keys)
	}
	sats := make([][]Word, len(keys))
	oks := make([]bool, len(keys))
	type ctxLookuper interface {
		LookupCtx(OpCtx, Word) ([]Word, bool)
	}
	cl, haveCtx := s.d.(ctxLookuper)
	if haveCtx && c.Op != nil {
		if mp, ok := s.d.(interface{ Machine() *pdm.Machine }); ok {
			// One root span around the whole loop: the per-key spans
			// nest under it, so the accountant completes one operation.
			defer mp.Machine().OpSpan(c.Op, c.Tag)()
		}
		for i, k := range keys {
			sats[i], oks[i] = cl.LookupCtx(c, k)
		}
		return sats, oks
	}
	for i, k := range keys {
		sats[i], oks[i] = s.d.Lookup(k)
	}
	return sats, oks
}

// Len returns the number of stored keys.
func (s *SyncDict) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.d.Len()
}

// IOStats returns the accumulated disk traffic.
func (s *SyncDict) IOStats() IOStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.d.IOStats()
}

// SetHook attaches an observability hook to the underlying dictionary,
// if it supports one. The write lock excludes in-flight operations, so
// this is safe to call at any time.
func (s *SyncDict) SetHook(h IOHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hooked, ok := s.d.(Hooked); ok {
		hooked.SetHook(h)
	}
}

package pdmdict_test

// Runnable godoc examples for the public API. Each doubles as a test
// (the // Output comments are verified by `go test`), and everything is
// seeded, so the printed numbers are stable.

import (
	"bytes"
	"fmt"
	"log"

	"pdmdict"
)

func ExampleNewBasic() {
	// The Section 4.1 structure: 1-I/O lookups, 2-I/O updates, worst case.
	d, err := pdmdict.NewBasic(pdmdict.BasicOptions{
		Options: pdmdict.Options{Capacity: 128, SatWords: 1, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	d.Insert(7, []pdmdict.Word{700})
	before := d.IOStats().ParallelIOs
	sat, ok := d.Lookup(7)
	fmt.Println(ok, sat[0], "cost:", d.IOStats().ParallelIOs-before)
	// Output: true 700 cost: 1
}

func ExampleBasic_LookupBatch() {
	d, err := pdmdict.NewBasic(pdmdict.BasicOptions{
		Options: pdmdict.Options{Capacity: 128, SatWords: 1, Seed: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	d.Insert(1, []pdmdict.Word{10})
	d.Insert(2, []pdmdict.Word{20})
	// A skewed burst: the hot key's blocks are read once, not three times.
	before := d.IOStats().ParallelIOs
	sats, oks := d.LookupBatch([]pdmdict.Word{1, 1, 1, 2, 99})
	fmt.Println(oks, sats[0][0], sats[3][0], "cost:", d.IOStats().ParallelIOs-before)
	// Output: [true true true true false] 10 20 cost: 2
}

func ExampleBuildStatic() {
	// Theorem 6: a one-probe static dictionary built from a record list.
	recs := []pdmdict.Record{
		{Key: 10, Sat: []pdmdict.Word{100}},
		{Key: 20, Sat: []pdmdict.Word{200}},
		{Key: 30, Sat: []pdmdict.Word{300}},
	}
	d, err := pdmdict.BuildStatic(pdmdict.StaticOptions{
		Options: pdmdict.Options{Capacity: 3, SatWords: 1, Degree: 6, Seed: 3},
	}, recs)
	if err != nil {
		log.Fatal(err)
	}
	sat, ok := d.Lookup(20)
	_, missing := d.Lookup(25)
	fmt.Println(ok, sat[0], missing)
	// Output: true 200 false
}

func ExampleNewDynamic() {
	// Theorem 7: 1 I/O misses, ≤1+ɛ average hits, ≤2+ɛ average updates.
	d, err := pdmdict.NewDynamic(pdmdict.Options{Capacity: 100, SatWords: 1, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	d.Insert(5, []pdmdict.Word{55})
	before := d.IOStats().ParallelIOs
	_, miss := d.Lookup(6)
	fmt.Println("miss:", miss, "cost:", d.IOStats().ParallelIOs-before)
	// Output: miss: false cost: 1
}

func ExampleNewOneProbe() {
	// Section 6 exploration: EVERY lookup is one parallel I/O; every
	// update two.
	d, err := pdmdict.NewOneProbe(pdmdict.OneProbeOptions{
		Options: pdmdict.Options{Capacity: 64, SatWords: 2, Seed: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	before := d.IOStats().ParallelIOs
	d.Insert(9, []pdmdict.Word{90, 91})
	insertCost := d.IOStats().ParallelIOs - before
	before = d.IOStats().ParallelIOs
	sat, _ := d.Lookup(9)
	fmt.Println(sat[1], "insert:", insertCost, "lookup:", d.IOStats().ParallelIOs-before)
	// Output: 91 insert: 2 lookup: 1
}

func ExampleDict_Save() {
	d, err := pdmdict.New(pdmdict.Options{Capacity: 32, SatWords: 1, Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	d.Insert(3, []pdmdict.Word{33})

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		log.Fatal(err)
	}
	restored, err := pdmdict.OpenDict(&buf)
	if err != nil {
		log.Fatal(err)
	}
	sat, ok := restored.Lookup(3)
	fmt.Println(ok, sat[0])
	// Output: true 33
}

func ExampleNewNamed() {
	// String keys for the file-system use case; names are verified, so
	// hash collisions can never return wrong data.
	base, err := pdmdict.New(pdmdict.Options{
		Capacity: 64,
		SatWords: pdmdict.NamedSatWords(1),
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	files := pdmdict.NewNamed(base, 1)
	files.Insert("/var/mail/inbox/0001.eml", []pdmdict.Word{1234})
	sat, ok := files.Lookup("/var/mail/inbox/0001.eml")
	_, missing := files.Lookup("/var/mail/inbox/0002.eml")
	fmt.Println(ok, sat[0], missing)
	// Output: true 1234 false
}

func ExampleSynchronized() {
	base, err := pdmdict.New(pdmdict.Options{Capacity: 32, SatWords: 1, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	d := pdmdict.Synchronized(base) // safe for concurrent readers/writers
	d.Insert(1, []pdmdict.Word{11})
	fmt.Println(d.Contains(1), d.Len())
	// Output: true 1
}

package pdmdict

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func newNamed(t *testing.T, satWords int) *NamedDict {
	t.Helper()
	d, err := New(Options{Capacity: 256, SatWords: NamedSatWords(satWords), Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	return NewNamed(d, satWords)
}

func TestNamedBasicOps(t *testing.T) {
	nd := newNamed(t, 2)
	if err := nd.Insert("/etc/passwd", []Word{1, 2}); err != nil {
		t.Fatal(err)
	}
	sat, ok := nd.Lookup("/etc/passwd")
	if !ok || sat[0] != 1 || sat[1] != 2 {
		t.Fatalf("Lookup = %v %v", sat, ok)
	}
	if nd.Contains("/etc/shadow") {
		t.Error("phantom name")
	}
	if err := nd.Insert("/etc/passwd", []Word{3, 4}); err != nil {
		t.Fatal(err)
	}
	if nd.Len() != 1 {
		t.Errorf("Len = %d after update", nd.Len())
	}
	if sat, _ := nd.Lookup("/etc/passwd"); sat[0] != 3 {
		t.Error("update did not stick")
	}
	if !nd.Delete("/etc/passwd") || nd.Delete("/etc/passwd") || nd.Contains("/etc/passwd") {
		t.Error("delete sequence wrong")
	}
	if nd.IOStats().ParallelIOs == 0 {
		t.Error("no I/O recorded")
	}
}

func TestNamedLongAndUnicodeNames(t *testing.T) {
	nd := newNamed(t, 1)
	names := []string{
		"",
		"a",
		strings.Repeat("x", 255),
		"files/ほげ/日本語.txt",
		"name with spaces and\ttabs",
	}
	for i, name := range names {
		if err := nd.Insert(name, []Word{Word(i)}); err != nil {
			t.Fatalf("insert %q: %v", name, err)
		}
	}
	for i, name := range names {
		sat, ok := nd.Lookup(name)
		if !ok || sat[0] != Word(i) {
			t.Fatalf("name %q = %v %v", name, sat, ok)
		}
	}
	if err := nd.Insert(strings.Repeat("y", 256), []Word{0}); err == nil {
		t.Error("256-byte name accepted")
	}
}

func TestNamedManyFiles(t *testing.T) {
	d, err := New(Options{Capacity: 1000, SatWords: NamedSatWords(1), Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	nd := NewNamed(d, 1)
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("/home/user%03d/mail/inbox/%04d.eml", i%50, i)
		if err := nd.Insert(name, []Word{Word(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if nd.Len() != 1000 {
		t.Fatalf("Len = %d", nd.Len())
	}
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("/home/user%03d/mail/inbox/%04d.eml", i%50, i)
		sat, ok := nd.Lookup(name)
		if !ok || sat[0] != Word(i) {
			t.Fatalf("%s = %v %v", name, sat, ok)
		}
	}
}

// Property: NamedDict behaves like a map[string] under random workloads.
func TestPropertyNamedMatchesMap(t *testing.T) {
	d, err := New(Options{Capacity: 64, SatWords: NamedSatWords(1), Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	nd := NewNamed(d, 1)
	oracle := map[string]Word{}
	f := func(ops []uint16) bool {
		for _, op := range ops {
			name := fmt.Sprintf("f%d", op%40)
			switch op % 3 {
			case 0:
				v := Word(op)
				if nd.Insert(name, []Word{v}) == nil {
					oracle[name] = v
				}
			case 1:
				_, okOracle := oracle[name]
				if nd.Delete(name) != okOracle {
					return false
				}
				delete(oracle, name)
			case 2:
				sat, ok := nd.Lookup(name)
				v, okOracle := oracle[name]
				if ok != okOracle || (ok && sat[0] != v) {
					return false
				}
			}
		}
		return nd.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

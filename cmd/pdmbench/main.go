// Command pdmbench runs the experiment suite that reproduces the
// paper's Figure 1 and validates every lemma/theorem bound (DESIGN.md's
// per-experiment index), printing one table per experiment.
//
// Usage:
//
//	pdmbench [-run regexp | -faults | -parallel ladder [-sched]] [-md | -csv | -json]
//	         [-list] [-out file] [-serve addr]
//
// -json emits the run as one JSON document — {"schema_version": N,
// "tables": [...]} — that also carries the per-operation parallel-I/O
// histograms (log₂ buckets, p50/p99/max) behind the summary rows; the
// text formats print only the aggregates. -out (alias -o) writes the
// output to a file. -serve exposes live /metrics, /healthz, and
// /debug/pprof endpoints while the suite runs: every machine the
// experiments build reports into the served collector.
//
// Examples:
//
//	pdmbench -list                 # show the experiment index
//	pdmbench -run fig1             # regenerate Figure 1
//	pdmbench -run 'E[0-9]+' -md    # all E-experiments as markdown
//	pdmbench -run fig1 -json -out bench.json   # machine-readable report
//	pdmbench -out results.txt                  # full suite into a file
//	pdmbench -serve :8080                      # watch the run live
//	pdmbench -parallel 8                       # multi-client throughput, 1 vs 8 clients
//	pdmbench -parallel 1,8,64                  # explicit client ladder
//	pdmbench -parallel 8 -json -out BENCH_PR5.json
//	pdmbench -parallel 1,8,64 -sched -json -out BENCH_PR10.json
//
// -parallel runs the multi-client throughput mode instead of the
// experiment suite: concurrent query streams over one shared
// dictionary, each paced by the modeled device latency, reported as
// wall and modeled ops/sec next to a single-client baseline. It takes
// either a single count N (shorthand for the ladder 1,N) or an
// explicit comma-separated ladder like 1,8,64.
//
// -sched (with -parallel) runs the group-commit scheduler comparison
// instead: at each client count the same uniform lookup workload runs
// direct (one parallel-I/O round per lookup) and through the
// deterministic-mode scheduler (concurrent lookups coalesced into one
// deduplicated shared round), reporting modeled steps per operation
// for both, the coalescing factor, and exact per-op accounting.
//
// -chaos runs the chaos soak instead of the experiment suite: a
// seed-generated schedule of fail/heal/corrupt rounds plays against a
// replicated dictionary while concurrent clients keep querying, a
// patrol scrub sweeps for silent damage, and the background repair
// supervisor heals every outage unaided. The run exits non-zero if any
// soak invariant breaks (a key unavailable mid-soak, unattributed
// recovery I/O, damage surviving the soak, or no convergence), so CI
// can gate on the exit code:
//
//	pdmbench -chaos -seed 2 -json -out chaos.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pdmdict/internal/bench"
	"pdmdict/internal/obs"
)

// parseLadder turns the -parallel argument into a client ladder: a bare
// count N keeps the historical meaning (baseline 1 plus N), while an
// explicit comma-separated list is used verbatim.
func parseLadder(s string) ([]int, error) {
	if !strings.Contains(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-parallel %q: want a positive client count or a ladder like 1,8,64", s)
		}
		if n == 1 {
			return []int{1}, nil
		}
		return []int{1, n}, nil
	}
	var ladder []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-parallel %q: bad client count %q", s, part)
		}
		ladder = append(ladder, n)
	}
	if len(ladder) == 0 {
		return nil, fmt.Errorf("-parallel %q: empty ladder", s)
	}
	return ladder, nil
}

func main() {
	var (
		pattern  = flag.String("run", "", "regexp selecting experiment IDs (empty = all)")
		markdown = flag.Bool("md", false, "emit markdown tables instead of aligned text")
		csv      = flag.Bool("csv", false, "emit CSV (for plotting pipelines)")
		jsonOut  = flag.Bool("json", false, "emit one JSON document incl. per-op I/O histograms")
		list     = flag.Bool("list", false, "list experiments and exit")
		faults   = flag.Bool("faults", false, "run the fault-tolerance scenario (shorthand for -run E14-faults)")
		outPath  = flag.String("out", "", "write output to this file instead of stdout")
		serve    = flag.String("serve", "", "serve live /metrics, /healthz, and /debug/pprof on this address while running")
		parallel = flag.String("parallel", "", "run the multi-client throughput mode: a client count N (shorthand for 1,N) or an explicit ladder like 1,8,64")
		schedCmp = flag.Bool("sched", false, "with -parallel: run the group-commit scheduler comparison (direct vs coalesced modeled steps/op) over the client ladder")
		ops      = flag.Int("ops", 0, "throughput mode: total operations per run (default 8000)")
		seed     = flag.Uint64("seed", 1, "throughput/chaos mode: workload seed")
		chaos    = flag.Bool("chaos", false, "run the chaos soak: scheduled fail/heal/corrupt rounds under concurrent traffic with background self-healing; exits non-zero if any soak invariant breaks")
		clients  = flag.Int("clients", 0, "chaos mode: concurrent lookup clients (default 8)")
		rounds   = flag.Int("rounds", 0, "chaos mode: damage rounds in the generated schedule (default 6)")
	)
	flag.StringVar(outPath, "o", "", "alias for -out")
	flag.Parse()

	if *faults {
		if *pattern != "" {
			fmt.Fprintln(os.Stderr, "pdmbench: -faults and -run are mutually exclusive")
			os.Exit(1)
		}
		*pattern = "^E14-faults"
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdmbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	if *serve != "" {
		collector := obs.NewCollector()
		ring := obs.NewRing(1024)
		mon := obs.NewMonitor(obs.Tee(collector, ring), obs.DefaultRules()...)
		bench.SetHook(mon)
		srv := &obs.Server{Collector: collector, Ring: ring, Monitor: mon}
		addr, stop, err := srv.Serve(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdmbench:", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "pdmbench: serving metrics on http://%s/metrics\n", addr)
	}

	format := bench.FormatText
	switch {
	case *jsonOut:
		format = bench.FormatJSON
	case *csv:
		format = bench.FormatCSV
	case *markdown:
		format = bench.FormatMarkdown
	}

	if *parallel != "" {
		if *pattern != "" {
			fmt.Fprintln(os.Stderr, "pdmbench: -parallel and -run are mutually exclusive")
			os.Exit(1)
		}
		if *clients != 0 {
			fmt.Fprintln(os.Stderr, "pdmbench: -clients is a chaos-mode flag; give -parallel an explicit ladder (e.g. -parallel 1,8,64) instead")
			os.Exit(1)
		}
		ladder, err := parseLadder(*parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdmbench:", err)
			os.Exit(1)
		}
		if *schedCmp {
			table, results, err := bench.SchedTable(bench.SchedBenchConfig{Seed: *seed}, ladder)
			if err == nil {
				err = bench.WriteSched(out, []bench.Table{table}, results, format)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "pdmbench:", err)
				os.Exit(1)
			}
			return
		}
		table, results, err := bench.ThroughputTable(bench.ThroughputConfig{TotalOps: *ops, Seed: *seed}, ladder)
		if err == nil {
			err = bench.WriteThroughput(out, []bench.Table{table}, results, format)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdmbench:", err)
			os.Exit(1)
		}
		return
	}
	if *schedCmp {
		fmt.Fprintln(os.Stderr, "pdmbench: -sched requires -parallel (the client ladder to compare over)")
		os.Exit(1)
	}

	if *chaos {
		if *pattern != "" || *parallel != "" {
			fmt.Fprintln(os.Stderr, "pdmbench: -chaos is mutually exclusive with -run and -parallel")
			os.Exit(1)
		}
		res, err := bench.RunChaos(bench.ChaosConfig{Seed: *seed, Clients: *clients, Rounds: *rounds})
		werr := bench.WriteChaos(out, []bench.Table{*bench.ChaosTable(res)}, []bench.ChaosResult{res}, format)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdmbench: chaos soak FAILED:", err)
			os.Exit(1)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "pdmbench:", werr)
			os.Exit(1)
		}
		return
	}

	if _, err := bench.RunFormat(*pattern, out, format); err != nil {
		fmt.Fprintln(os.Stderr, "pdmbench:", err)
		os.Exit(1)
	}
}

// Command expgen constructs and audits the expander graphs the
// dictionaries run on: the seeded hash family (the default) or the
// Section 5 semi-explicit telescope construction.
//
// Usage:
//
//	expgen [-kind family|telescope] [-u bits] [-d degree] [-n size]
//	       [-eps error] [-seed s] [-trials t]
//
// It prints the constructed graph's parameters and a sampled expansion
// audit (worst ε over random sets, Lemma 4/5 unique-neighbor statistics).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pdmdict/internal/expander"
	"pdmdict/internal/explicit"
)

func main() {
	var (
		kind   = flag.String("kind", "family", "graph kind: family | telescope")
		uBits  = flag.Int("u", 32, "universe size = 2^u")
		degree = flag.Int("d", 12, "left degree (family) or per-level degree (telescope)")
		n      = flag.Int("n", 1024, "set size the expander must serve")
		eps    = flag.Float64("eps", 0.25, "target expansion error")
		seed   = flag.Uint64("seed", 1, "construction seed")
		trials = flag.Int("trials", 20, "sampled sets per size class in the audit")
		gamma  = flag.Float64("gamma", 0.5, "telescope shrink exponent (Theorem 12's β'/c)")
	)
	flag.Parse()

	u := uint64(1) << *uBits
	var g expander.Graph
	switch *kind {
	case "family":
		stripe := 6 * *n
		g = expander.NewFamily(u, *degree, stripe, *seed)
		fmt.Printf("seeded family: u=2^%d d=%d v=%d (stripe %d), memory O(1)\n",
			*uBits, *degree, g.RightSize(), stripe)
	case "telescope":
		semi, err := explicit.Construct(explicit.SemiConfig{
			U: u, N: *n, Eps: *eps, Gamma: *gamma, DegreePerLevel: *degree, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "expgen:", err)
			os.Exit(1)
		}
		g = semi.Graph
		fmt.Printf("telescope (Theorem 12): u=2^%d levels=%d degree=%d v=%d memory=%d words (per-level ε'=%.3f)\n",
			*uBits, semi.Levels, g.Degree(), g.RightSize(), semi.MemoryWords, semi.PerLevelEps)
		for i, b := range semi.Bases {
			fmt.Printf("  level %d: measured ε=%.3f after %d seeds, %d memory words\n",
				i, b.MeasuredEps, b.SeedsTried, b.MemoryWords)
		}
	default:
		fmt.Fprintf(os.Stderr, "expgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	sizes := []int{}
	for s := 1; s <= *n; s *= 4 {
		sizes = append(sizes, s)
	}
	rep := expander.EstimateExpansion(g, sizes, *trials, int64(*seed))
	status := "PASS"
	if rep.WorstEpsilon > *eps {
		status = "FAIL"
	}
	fmt.Printf("audit: %d sets sampled, worst ε=%.4f at |S|=%d (target %.3f) → %s\n",
		rep.SetsChecked, rep.WorstEpsilon, rep.WorstSetSize, *eps, status)

	s := expander.SampleSet(u, *n, rand.New(rand.NewSource(int64(*seed))))
	st := expander.UniqueNeighborStats(g, s, 1.0/3)
	fmt.Printf("unique neighbors on a random %d-set: Φ=%d (%.1f%% of edges), |S'|=%d (%.1f%% of keys with ≥2d/3 unique)\n",
		*n, st.Phi, 100*float64(st.Phi)/float64(g.Degree()**n),
		st.WellCovered, 100*float64(st.WellCovered)/float64(*n))
	if status == "FAIL" {
		os.Exit(1)
	}
}

// Command pdmlint is the repo's vet tool: eight analyzers (iocharge,
// batcherr, detrand, hooktag, opctx, lockorder, guardedby,
// healthtrans) that enforce the I/O-accounting, determinism, and
// concurrency-contract invariants the paper's measured claims depend
// on. Stale //lint:pdm-allow waivers are reported as a ninth rule,
// unusedwaiver. See DESIGN.md, "Enforced invariants".
//
// Usage:
//
//	go build -o bin/pdmlint ./cmd/pdmlint
//	go vet -vettool=$PWD/bin/pdmlint ./...
//
// or, equivalently, let it re-exec through go vet itself:
//
//	./bin/pdmlint ./...
//	./bin/pdmlint -json ./...   # one JSON diagnostic per line on stdout
package main

import (
	"os"

	"pdmdict/internal/lint"
)

func main() {
	os.Exit(lint.VettoolMain("pdmlint", os.Args[1:], os.Stdout, os.Stderr))
}

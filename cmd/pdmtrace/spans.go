package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"pdmdict/internal/obs"
	"pdmdict/internal/pdm"
)

// runSpans is the -spans analyzer: it loads a recorded I/O event trace
// (the JSONL that -trace writes), folds the span events back into
// per-operation records, and reports per-tag step/latency quantiles, a
// top-K of the most expensive operations, and a disk-skew timeline.
// Malformed traces are reported as file:line and a non-nil error.
func runSpans(path string, topk int, cost obs.CostModel, w io.Writer) error {
	if cost == (obs.CostModel{}) {
		// Resolve the default here so the report header shows the
		// constants the latencies were actually computed with.
		cost = obs.DefaultCostModel
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		var pe *obs.ParseError
		if errors.As(err, &pe) {
			return fmt.Errorf("%s:%d: %v", path, pe.Line, pe.Err)
		}
		return fmt.Errorf("%s: %v", path, err)
	}
	recs := obs.FoldSpans(events, cost)
	if len(recs) == 0 {
		fmt.Fprintf(w, "%s: %d events, no spans (record with a version %d trace)\n",
			path, len(events), obs.TraceVersion)
		return nil
	}

	fmt.Fprintf(w, "%s: %d events, %d spans\n", path, len(events), len(recs))
	perTagQuantiles(w, recs, cost)
	topK(w, recs, topk)
	skewTimeline(w, events)
	return nil
}

// tagAgg collects the spans of one tag for exact offline quantiles.
type tagAgg struct {
	steps   []int64
	latency []time.Duration
	faults  int64
	blocks  int64
}

func perTagQuantiles(w io.Writer, recs []obs.OpRecord, cost obs.CostModel) {
	agg := map[string]*tagAgg{}
	for _, r := range recs {
		a := agg[r.Tag]
		if a == nil {
			a = &tagAgg{}
			agg[r.Tag] = a
		}
		a.steps = append(a.steps, r.Steps)
		a.latency = append(a.latency, r.Latency)
		a.faults += r.Faults
		a.blocks += r.Blocks
	}
	tags := make([]string, 0, len(agg))
	for tag := range agg {
		tags = append(tags, tag)
	}
	sort.Strings(tags)

	fmt.Fprintf(w, "\nper-tag span cost (modeled latency: %v/step + %v/block)\n",
		cost.StepCost, cost.BlockCost)
	fmt.Fprintf(w, "%-24s %8s %10s %6s %6s %6s %12s %12s %7s\n",
		"tag", "count", "avg pIOs", "p50", "p99", "max", "avg latency", "p99 latency", "faults")
	for _, tag := range tags {
		a := agg[tag]
		sort.Slice(a.steps, func(i, j int) bool { return a.steps[i] < a.steps[j] })
		sort.Slice(a.latency, func(i, j int) bool { return a.latency[i] < a.latency[j] })
		n := len(a.steps)
		var stepSum int64
		for _, s := range a.steps {
			stepSum += s
		}
		var latSum time.Duration
		for _, l := range a.latency {
			latSum += l
		}
		q := func(p float64) int64 { return a.steps[int(p*float64(n-1))] }
		lq := func(p float64) time.Duration { return a.latency[int(p*float64(n-1))] }
		fmt.Fprintf(w, "%-24s %8d %10.3f %6d %6d %6d %12s %12s %7d\n",
			tag, n, float64(stepSum)/float64(n), q(0.5), q(0.99), a.steps[n-1],
			(latSum / time.Duration(n)).Round(time.Microsecond),
			lq(0.99).Round(time.Microsecond), a.faults)
	}
}

func topK(w io.Writer, recs []obs.OpRecord, k int) {
	byCost := append([]obs.OpRecord(nil), recs...)
	sort.Slice(byCost, func(i, j int) bool {
		a, b := byCost[i], byCost[j]
		if a.Steps != b.Steps {
			return a.Steps > b.Steps
		}
		if a.Blocks != b.Blocks {
			return a.Blocks > b.Blocks
		}
		return a.ID < b.ID
	})
	if k > len(byCost) {
		k = len(byCost)
	}
	fmt.Fprintf(w, "\ntop %d most expensive spans\n", k)
	fmt.Fprintf(w, "%-6s %-24s %8s %8s %8s %12s %10s\n",
		"span", "tag", "pIOs", "blocks", "faults", "latency", "steps")
	for _, r := range byCost[:k] {
		fmt.Fprintf(w, "%-6d %-24s %8d %8d %8d %12s [%d,%d)\n",
			r.ID, r.Tag, r.Steps, r.Blocks, r.Faults,
			r.Latency.Round(time.Microsecond), r.BeginStep, r.EndStep)
	}
}

// skewTimeline replays the batch events through a Collector sized to
// ~16 windows and prints how disk skew (max/mean transfers) evolved.
func skewTimeline(w io.Writer, events []pdm.Event) {
	var totalSteps int64
	for _, e := range events {
		if !e.Kind.IsSpan() {
			totalSteps += int64(e.Steps)
		}
	}
	if totalSteps == 0 {
		return
	}
	c := obs.NewCollector()
	c.WindowSteps = (totalSteps + 15) / 16
	c.MaxWindows = 16
	for _, e := range events {
		c.Event(e)
	}
	windows := c.Windows()
	if len(windows) == 0 {
		return
	}
	fmt.Fprintf(w, "\ndisk skew timeline (max/mean transfers per %d-step window)\n", c.WindowSteps)
	fmt.Fprintf(w, "%-18s %10s %6s\n", "steps", "blocks", "skew")
	for _, win := range windows {
		var sum, max int64
		for _, v := range win.PerDisk {
			sum += v
			if v > max {
				max = v
			}
		}
		skew := 0.0
		if sum > 0 && len(win.PerDisk) > 0 {
			skew = float64(max) * float64(len(win.PerDisk)) / float64(sum)
		}
		fmt.Fprintf(w, "[%8d,%8d) %10d %6.2f\n", win.StartStep, win.EndStep, sum, skew)
	}
}

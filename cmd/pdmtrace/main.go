// Command pdmtrace replays an operation trace against any of the
// package's dictionaries and reports the parallel-I/O cost profile —
// the tool for answering "what would MY workload cost on this
// structure?".
//
// Usage:
//
//	pdmtrace -struct dict|basic|dynamic|oneprobe|hash|cuckoo|twolevel|btree
//	         [-in trace.txt | -gen N -mix read|write] [-capacity C]
//	         [-sat words] [-degree d] [-block B] [-seed s] [-out trace.txt]
//	         [-hist] [-trace events.jsonl]
//	pdmtrace -spans events.jsonl [-topk K]
//	pdmtrace -alerts events.jsonl
//
// -hist prints log₂-bucketed histograms of parallel I/Os per operation
// plus a per-tag I/O breakdown and per-disk skew (via the hook-based
// collector). -trace streams every I/O batch as one JSON object per
// line — op kind, span tag, steps, depth, block addresses — replayable
// with obs.Replay to reproduce the cost profile.
//
// -spans analyzes a recorded event trace offline: it folds the trace's
// span events into per-operation records and prints per-tag parallel
// I/O and modeled-latency quantiles, the top-K most expensive spans,
// and a disk-skew timeline. Malformed traces are reported as file:line
// and exit nonzero.
//
// -alerts replays a recorded event trace through the deterministic
// watchdog (obs.Monitor with the default rules) and prints the alert
// timeline it produces — byte-identical to the live monitor's timeline
// on the same stream, since the watchdog's clock is the trace's own
// step counter.
//
// Examples:
//
//	pdmtrace -gen 10000 -mix read -struct basic     # synthetic read-mostly
//	pdmtrace -gen 10000 -out my.trace               # just write the trace
//	pdmtrace -in my.trace -struct btree             # replay it on a B-tree
//	pdmtrace -gen 10000 -struct dict -hist          # cost histograms + tags
//	pdmtrace -gen 10000 -trace io.jsonl             # record raw I/O events
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pdmdict"
	"pdmdict/internal/obs"
	"pdmdict/internal/workload"
)

func main() {
	var (
		structName = flag.String("struct", "dict", "structure to drive: dict|basic|dynamic|oneprobe|hash|cuckoo|twolevel|btree")
		inPath     = flag.String("in", "", "trace file to replay (default: generate)")
		outPath    = flag.String("out", "", "write the (generated) trace here instead of replaying")
		gen        = flag.Int("gen", 10000, "synthetic trace length when -in is not given")
		mix        = flag.String("mix", "read", "synthetic mix: read|write")
		capacity   = flag.Int("capacity", 4096, "dictionary capacity")
		satWords   = flag.Int("sat", 1, "satellite words per key")
		degree     = flag.Int("degree", 20, "expander degree / disk group size")
		blockSize  = flag.Int("block", 64, "block size B in words")
		seed       = flag.Uint64("seed", 1, "structure seed")
		hist       = flag.Bool("hist", false, "print per-op I/O histograms, per-tag breakdown, and per-disk skew")
		tracePath  = flag.String("trace", "", "stream I/O events to this JSONL file")
		spansPath  = flag.String("spans", "", "analyze a recorded JSONL event trace: per-tag quantiles, top-K spans, skew timeline")
		alertsPath = flag.String("alerts", "", "replay a recorded JSONL event trace through the watchdog: alert timeline and per-rule summary")
		topk       = flag.Int("topk", 10, "how many expensive spans -spans reports")
	)
	flag.Parse()

	if *spansPath != "" {
		if err := runSpans(*spansPath, *topk, obs.CostModel{}, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "pdmtrace:", err)
			os.Exit(1)
		}
		return
	}
	if *alertsPath != "" {
		if err := runAlerts(*alertsPath, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "pdmtrace:", err)
			os.Exit(1)
		}
		return
	}

	ops, err := loadOps(*inPath, *gen, *mix, *capacity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdmtrace:", err)
		os.Exit(1)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdmtrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := workload.WriteTrace(f, ops); err != nil {
			fmt.Fprintln(os.Stderr, "pdmtrace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d ops to %s\n", len(ops), *outPath)
		return
	}

	opts := pdmdict.Options{
		Capacity:  *capacity,
		SatWords:  *satWords,
		Degree:    *degree,
		BlockSize: *blockSize,
		Seed:      *seed,
	}
	dict, err := build(*structName, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdmtrace:", err)
		os.Exit(1)
	}

	// Optional observability: a metrics collector for -hist and a JSONL
	// event stream for -trace, teed into the same hook.
	var collector *obs.Collector
	var traceWriter *obs.JSONLWriter
	if *hist {
		collector = obs.NewCollector()
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdmtrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		traceWriter = obs.NewJSONLWriter(f)
	}
	if collector != nil || traceWriter != nil {
		hooked, ok := dict.(pdmdict.Hooked)
		if !ok {
			fmt.Fprintf(os.Stderr, "pdmtrace: structure %q does not support hooks\n", *structName)
			os.Exit(1)
		}
		if collector != nil && traceWriter != nil {
			hooked.SetHook(obs.Tee(collector, traceWriter))
		} else if collector != nil {
			hooked.SetHook(collector)
		} else {
			hooked.SetHook(traceWriter)
		}
	}

	sat := make([]pdmdict.Word, *satWords)
	for i := range sat {
		sat[i] = pdmdict.Word(i)
	}
	costs := map[workload.OpKind][]int64{}
	errors := 0
	for _, op := range ops {
		before := dict.IOStats().ParallelIOs
		switch op.Kind {
		case workload.OpInsert:
			if err := dict.Insert(op.Key, sat); err != nil {
				errors++
			}
		case workload.OpLookup:
			dict.Lookup(op.Key)
		case workload.OpDelete:
			dict.Delete(op.Key)
		}
		costs[op.Kind] = append(costs[op.Kind], dict.IOStats().ParallelIOs-before)
	}

	fmt.Printf("replayed %d ops on %q (capacity %d, σ=%d words, d=%d, B=%d)\n",
		len(ops), *structName, *capacity, *satWords, *degree, *blockSize)
	fmt.Printf("%-8s %8s %10s %8s %8s %8s\n", "op", "count", "avg I/Os", "p50", "p99", "max")
	for _, kind := range []workload.OpKind{workload.OpLookup, workload.OpInsert, workload.OpDelete} {
		cs := costs[kind]
		if len(cs) == 0 {
			continue
		}
		fmt.Printf("%-8s %8d %10.3f %8d %8d %8d\n",
			kindName(kind), len(cs), avg(cs), pct(cs, 0.50), pct(cs, 0.99), pct(cs, 1))
	}
	fmt.Printf("final: %d keys stored, %d total parallel I/Os", dict.Len(), dict.IOStats().ParallelIOs)
	if errors > 0 {
		fmt.Printf(", %d failed inserts (capacity)", errors)
	}
	fmt.Println()

	if collector != nil {
		var sb strings.Builder
		for _, kind := range []workload.OpKind{workload.OpLookup, workload.OpInsert, workload.OpDelete} {
			cs := costs[kind]
			if len(cs) == 0 {
				continue
			}
			var h obs.Hist
			for _, c := range cs {
				h.Observe(c)
			}
			h.Render(&sb, fmt.Sprintf("\nparallel I/Os per %s", kindName(kind)))
		}
		sb.WriteString("\nper-tag I/O breakdown\n")
		collector.RenderTags(&sb)
		sb.WriteString("\nper-disk transfers\n")
		collector.RenderPerDisk(&sb)
		fmt.Print(sb.String())
	}
	if traceWriter != nil {
		if err := traceWriter.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "pdmtrace: writing trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote I/O event trace to %s\n", *tracePath)
	}
}

func loadOps(inPath string, gen int, mix string, capacity int) ([]workload.Op, error) {
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ReadTrace(f)
	}
	m := workload.ReadMostly
	if mix == "write" {
		m = workload.WriteHeavy
	}
	keys := workload.Uniform(capacity, 1<<44, 1)
	return workload.Ops(keys, gen, m, 0.05, 2), nil
}

func build(name string, opts pdmdict.Options) (pdmdict.Dictionary, error) {
	switch name {
	case "dict":
		return pdmdict.New(opts)
	case "basic":
		return pdmdict.NewBasic(pdmdict.BasicOptions{Options: opts})
	case "dynamic":
		return pdmdict.NewDynamic(opts)
	case "oneprobe":
		return pdmdict.NewOneProbe(pdmdict.OneProbeOptions{Options: opts})
	case "hash":
		return pdmdict.NewHashTable(opts)
	case "cuckoo":
		return pdmdict.NewCuckoo(opts)
	case "twolevel":
		return pdmdict.NewTwoLevel(opts)
	case "btree":
		return pdmdict.NewBTree(pdmdict.BTreeOptions{Options: opts})
	default:
		return nil, fmt.Errorf("unknown structure %q", name)
	}
}

func kindName(k workload.OpKind) string {
	switch k {
	case workload.OpLookup:
		return "lookup"
	case workload.OpInsert:
		return "insert"
	default:
		return "delete"
	}
}

func avg(cs []int64) float64 {
	var sum int64
	for _, c := range cs {
		sum += c
	}
	return float64(sum) / float64(len(cs))
}

func pct(cs []int64, p float64) int64 {
	sorted := append([]int64(nil), cs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(p*float64(len(sorted)-1))]
}

package main

import (
	"errors"
	"fmt"
	"io"
	"os"

	"pdmdict/internal/obs"
)

// runAlerts is the -alerts analyzer: it loads a recorded I/O event
// trace, feeds every event through a fresh watchdog with the default
// rules, and prints the resulting alert timeline plus the per-rule
// summary. Because the watchdog's clock is the trace's own step
// counter, the timeline is byte-identical to what a live Monitor on the
// same stream produced — the online/offline equivalence the property
// tests pin. Incoming alert annotations in a v5 trace are ignored by
// the rules (the Monitor regenerates them), so replaying a trace that
// already contains alerts does not compound them.
func runAlerts(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		var pe *obs.ParseError
		if errors.As(err, &pe) {
			return fmt.Errorf("%s:%d: %v", path, pe.Line, pe.Err)
		}
		return fmt.Errorf("%s: %v", path, err)
	}
	mon := obs.NewMonitor(nil, obs.DefaultRules()...)
	for _, e := range events {
		mon.Event(e)
	}
	snap := mon.Snapshot()
	fmt.Fprintf(w, "%s: %d events, %d steps, %d alert transitions\n",
		path, len(events), snap.Step, snap.Transitions)
	mon.RenderTimeline(w)
	for _, r := range snap.Rules {
		fmt.Fprintf(w, "rule %s: firing=%d pending=%d transitions=%d cycles=%d\n",
			r.Rule, r.Firing, r.Pending, r.Transitions, r.Cycles)
	}
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdmdict"
	"pdmdict/internal/obs"
)

func TestRunSpansReportsMalformedLineAndFails(t *testing.T) {
	var out strings.Builder
	err := runSpans(filepath.Join("testdata", "truncated.jsonl"), 5, obs.CostModel{}, &out)
	if err == nil {
		t.Fatal("truncated trace must return an error (main exits nonzero)")
	}
	msg := err.Error()
	if !strings.Contains(msg, "truncated.jsonl:4") {
		t.Errorf("error %q does not point at file:line (want ...truncated.jsonl:4)", msg)
	}
}

func TestRunSpansMissingFileFails(t *testing.T) {
	if err := runSpans(filepath.Join("testdata", "no-such.jsonl"), 5, obs.CostModel{}, &strings.Builder{}); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestRunSpansAnalyzesRecordedTrace(t *testing.T) {
	// Record a real workload — the dictionary wraps every operation in a
	// span — then analyze the trace and check the report has per-tag
	// quantiles, the top-K table, and the skew timeline.
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := obs.NewJSONLWriter(f)
	dict, err := pdmdict.New(pdmdict.Options{Capacity: 256, SatWords: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dict.SetHook(w)
	for i := 0; i < 64; i++ {
		if err := dict.Insert(pdmdict.Word(i+1), []pdmdict.Word{pdmdict.Word(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		dict.Lookup(pdmdict.Word(i + 1))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := runSpans(path, 5, obs.CostModel{}, &out); err != nil {
		t.Fatalf("runSpans: %v", err)
	}
	report := out.String()
	for _, want := range []string{
		"per-tag span cost", "insert", "lookup",
		"top 5 most expensive spans", "disk skew timeline",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

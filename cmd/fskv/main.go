// Command fskv is a small interactive key-value shell over the paper's
// dictionaries — the Section 1.2 file-system use case ("let keys
// consist of a file name and a block number"). It reads commands from
// stdin and reports the parallel-I/O cost of each.
//
// Commands:
//
//	put <file> <block#> <text…>   store a block
//	get <file> <block#>           fetch a block
//	del <file> <block#>           delete a block
//	fail <disk>                   inject a fail-stop fault on a disk
//	heal <disk>                   stop failing a disk (data NOT repaired)
//	repair <disk>                 rebuild a disk from surviving replicas
//	scrub                         verify every block, clear degraded flag
//	stats                         I/O counters so far
//	quit
//
// Unknown commands and malformed arguments print a usage line; the
// shell stays alive.
//
// By default the store is the fully dynamic dictionary. With
// -replicas k (k ≥ 2) it is the Section 4.1 dictionary in replicate
// mode: k full copies of every record on k distinct disks, so get keeps
// answering — through the checked, degraded-read path — with up to k−1
// disks failed, and repair rebuilds a failed disk bit-identically from
// the survivors. scrub and repair require -replicas; put and del use
// the fault-oblivious write path regardless (a write during a failure
// lands everywhere, so repair or scrub afterwards).
//
// With -serve addr the shell also serves live observability endpoints
// while it runs: Prometheus /metrics, /healthz (503 once the store is
// degraded), /debug/events (recent I/O events as trace JSONL), and the
// standard /debug/pprof profiles.
//
// stats reports, beyond the block count and total parallel I/Os, the
// fault state (degraded flag, failed disks, fault event count) and the
// hook-based observability view of the store: a per-tag breakdown
// (lookup / insert / fault.* / …) and the per-disk transfer tallies
// with a skew figure (max/mean; 1.00 is perfectly balanced — the
// quantity the paper's deterministic load balancing bounds).
//
// Names are handled by the NamedDict adapter: hashed to word keys, as
// the paper suggests ("the name can be easily hashed as well"), with
// the stored name verified on every access so collisions are impossible
// to observe.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pdmdict"
	"pdmdict/internal/fault"
	"pdmdict/internal/obs"
)

// blockWords is the satellite budget per stored block.
const blockWords = 32

func blockName(file string, blk uint64) string {
	return fmt.Sprintf("%s#%d", file, blk)
}

func encode(text string) []pdmdict.Word {
	sat := make([]pdmdict.Word, blockWords)
	b := []byte(text)
	if len(b) > (blockWords-1)*8 {
		b = b[:(blockWords-1)*8]
	}
	sat[0] = pdmdict.Word(len(b))
	for i, c := range b {
		sat[1+i/8] |= pdmdict.Word(c) << (8 * (i % 8))
	}
	return sat
}

func decode(sat []pdmdict.Word) string {
	n := int(sat[0])
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(sat[1+i/8] >> (8 * (i % 8)))
	}
	return string(b)
}

// store is what the shell needs from either backing dictionary.
type store interface {
	Insert(name string, sat []pdmdict.Word) error
	LookupTry(name string) ([]pdmdict.Word, bool, error)
	Delete(name string) bool
	Len() int
	IOStats() pdmdict.IOStats
}

func main() {
	replicas := flag.Int("replicas", 0,
		"replicate each record onto this many distinct disks (≥2 enables degraded reads, repair, scrub)")
	serve := flag.String("serve", "",
		"serve live /metrics, /healthz, /debug/events, and /debug/pprof on this address (e.g. :8080 or 127.0.0.1:0)")
	flag.Parse()

	var (
		dict     store
		basic    *pdmdict.Basic // non-nil iff -replicas ≥ 2
		degraded func() bool
		faults   func() int64
		disks    int
	)
	collector := obs.NewCollector()
	ring := obs.NewRing(256)
	hook := obs.Tee(collector, ring)
	plan := fault.NewPlan(1)
	switch {
	case *replicas >= 2:
		b, err := pdmdict.NewBasic(pdmdict.BasicOptions{
			Options: pdmdict.Options{
				Capacity:  1024,
				SatWords:  pdmdict.NamedSatWords(blockWords),
				BlockSize: 512,
				Seed:      1,
			},
			Replicas: *replicas,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fskv:", err)
			os.Exit(1)
		}
		b.SetHook(hook)
		b.SetFaultInjector(plan)
		basic = b
		dict = pdmdict.NewNamed(b, blockWords)
		degraded, faults = b.Degraded, b.FaultCount
		disks = b.Machine().D()
	case *replicas == 0 || *replicas == 1:
		base, err := pdmdict.New(pdmdict.Options{
			Capacity: 1024,
			SatWords: pdmdict.NamedSatWords(blockWords),
			Seed:     1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fskv:", err)
			os.Exit(1)
		}
		base.SetHook(hook)
		base.SetFaultInjector(plan)
		dict = pdmdict.NewNamed(base, blockWords)
		degraded = base.Degraded
		faults = func() int64 { return 0 }
		disks = 2 * 20 // Dict default: membership + cascade on 2d disks
	default:
		fmt.Fprintln(os.Stderr, "fskv: -replicas must be ≥ 2 (or 0 to disable)")
		os.Exit(1)
	}

	if *serve != "" {
		srv := &obs.Server{
			Collector: collector,
			Ring:      ring,
			Healthy:   func() bool { return !degraded() },
		}
		addr, stop, err := srv.Serve(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fskv:", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Printf("serving metrics on http://%s/metrics (health: /healthz, profiles: /debug/pprof/)\n", addr)
	}

	mode := "dynamic store"
	if basic != nil {
		mode = fmt.Sprintf("replicated store (%d copies, tolerates %d failed disks)", *replicas, *replicas-1)
	}
	fmt.Printf("fskv: deterministic dictionary file store, %s (put/get/del/fail/heal/repair/scrub/stats/quit)\n", mode)
	sc := bufio.NewScanner(os.Stdin)
	parseBlock := func(s, usage string) (uint64, bool) {
		blk, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			fmt.Printf("bad block number %q\nusage: %s\n", s, usage)
			return 0, false
		}
		return blk, true
	}
	parseDisk := func(s, usage string) (int, bool) {
		d, err := strconv.Atoi(s)
		if err != nil || d < 0 || d >= disks {
			fmt.Printf("bad disk %q (store has disks 0..%d)\nusage: %s\n", s, disks-1, usage)
			return 0, false
		}
		return d, true
	}
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		before := dict.IOStats().ParallelIOs
		switch fields[0] {
		case "put":
			const usage = "put <file> <block#> <text…>"
			if len(fields) < 4 {
				fmt.Println("usage:", usage)
				continue
			}
			blk, ok := parseBlock(fields[2], usage)
			if !ok {
				continue
			}
			if err := dict.Insert(blockName(fields[1], blk), encode(strings.Join(fields[3:], " "))); err != nil {
				fmt.Println("put failed:", err)
				continue
			}
			fmt.Printf("stored (%d parallel I/Os)\n", dict.IOStats().ParallelIOs-before)
		case "get":
			const usage = "get <file> <block#>"
			if len(fields) != 3 {
				fmt.Println("usage:", usage)
				continue
			}
			blk, ok := parseBlock(fields[2], usage)
			if !ok {
				continue
			}
			sat, found, err := dict.LookupTry(blockName(fields[1], blk))
			cost := dict.IOStats().ParallelIOs - before
			switch {
			case err != nil:
				fmt.Printf("read inconclusive (%d parallel I/Os): %v\n", cost, err)
			case !found:
				fmt.Printf("not found (%d parallel I/Os)\n", cost)
			default:
				fmt.Printf("%q (%d parallel I/Os)\n", decode(sat), cost)
			}
		case "del":
			const usage = "del <file> <block#>"
			if len(fields) != 3 {
				fmt.Println("usage:", usage)
				continue
			}
			blk, ok := parseBlock(fields[2], usage)
			if !ok {
				continue
			}
			deleted := dict.Delete(blockName(fields[1], blk))
			fmt.Printf("deleted=%v (%d parallel I/Os)\n", deleted, dict.IOStats().ParallelIOs-before)
		case "fail":
			const usage = "fail <disk>"
			if len(fields) != 2 {
				fmt.Println("usage:", usage)
				continue
			}
			d, ok := parseDisk(fields[1], usage)
			if !ok {
				continue
			}
			plan.FailDisk(d)
			fmt.Printf("disk %d failed (fail-stop); failed disks: %v\n", d, plan.FailedDisks())
		case "heal":
			const usage = "heal <disk>"
			if len(fields) != 2 {
				fmt.Println("usage:", usage)
				continue
			}
			d, ok := parseDisk(fields[1], usage)
			if !ok {
				continue
			}
			plan.HealDisk(d)
			fmt.Printf("disk %d healed (contents unchanged — run: repair %d)\n", d, d)
		case "repair":
			const usage = "repair <disk>"
			if len(fields) != 2 {
				fmt.Println("usage:", usage)
				continue
			}
			d, ok := parseDisk(fields[1], usage)
			if !ok {
				continue
			}
			if basic == nil {
				fmt.Println("repair needs the replicated store: rerun with -replicas 2")
				continue
			}
			if plan.Failed(d) {
				fmt.Printf("disk %d is still failed — heal %d first\n", d, d)
				continue
			}
			if err := basic.Repair(d); err != nil {
				fmt.Println("repair failed:", err)
				continue
			}
			fmt.Printf("disk %d rebuilt from replicas (%d parallel I/Os)\n", d, dict.IOStats().ParallelIOs-before)
		case "scrub":
			if basic == nil {
				fmt.Println("scrub needs the replicated store: rerun with -replicas 2")
				continue
			}
			bad := basic.Scrub()
			cost := dict.IOStats().ParallelIOs - before
			if len(bad) == 0 {
				fmt.Printf("scrub clean: all blocks verified (%d parallel I/Os)\n", cost)
			} else {
				fmt.Printf("scrub found %d bad blocks (%d parallel I/Os): %v\n", len(bad), cost, bad)
			}
		case "stats":
			fmt.Printf("blocks stored: %d, total parallel I/Os: %d\n",
				dict.Len(), dict.IOStats().ParallelIOs)
			fmt.Printf("degraded: %v, failed disks: %v, fault events: %d\n",
				degraded(), plan.FailedDisks(), faults())
			var sb strings.Builder
			sb.WriteString("per-tag I/O breakdown:\n")
			collector.RenderTags(&sb)
			sb.WriteString("per-operation cost (modeled latency):\n")
			collector.RenderOps(&sb)
			sb.WriteString("per-disk transfers:\n")
			collector.RenderPerDisk(&sb)
			fmt.Print(sb.String())
		case "quit", "exit":
			return
		default:
			fmt.Printf("unknown command %q — commands: put get del fail heal repair scrub stats quit\n", fields[0])
		}
	}
}

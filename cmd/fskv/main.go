// Command fskv is a small interactive key-value shell over the paper's
// dictionaries — the Section 1.2 file-system use case ("let keys
// consist of a file name and a block number"). It reads commands from
// stdin and reports the parallel-I/O cost of each.
//
// Commands:
//
//	put <file> <block#> <text…>   store a block
//	get <file> <block#>           fetch a block
//	del <file> <block#>           delete a block
//	fail <disk>                   inject a fail-stop fault on a disk
//	heal <disk>                   stop failing a disk (data NOT repaired)
//	repair <disk>                 rebuild a disk from survivors, verify it
//	scrub                         verify every block, clear degraded flag
//	health                        per-disk health states, recovery counters, alert summary
//	stats                         I/O counters so far
//	quit
//
// Unknown commands and malformed arguments print a usage line; the
// shell stays alive.
//
// By default the store is the fully dynamic dictionary. With
// -replicas k (k ≥ 2) it is the Section 4.1 dictionary in replicate
// mode: k full copies of every record on k distinct disks, so get keeps
// answering — through the checked, degraded-read path — with up to k−1
// disks failed, and repair rebuilds a failed disk bit-identically from
// the survivors. scrub and repair require -replicas; put and del use
// the fault-oblivious write path regardless (a write during a failure
// lands everywhere, so repair or scrub afterwards).
//
// Health is tracked per disk (Healthy/Suspect/Failed/Repairing), so
// recovering one disk never erases what is known about another: repair
// verifies just the repaired disk's stripe and returns only that disk
// to Healthy, while a machine-wide clean scrub clears everything. With
// -selfheal the background repair supervisor does all of this by
// itself: once a failed disk starts answering again (any get that
// touches it), the supervisor rebuilds and verifies it in bounded
// chunks interleaved with the shell's own commands.
//
// Every machine event also flows through the deterministic watchdog
// (obs.Monitor with the default rules): the balance auditor, the SLO
// burn-rate rule, health-flap detection, and the degraded-capacity
// rule, all clocked by the parallel-I/O step counter. With -selfheal a
// firing degraded-capacity alert additionally nudges the repair
// supervisor awake.
//
// With -serve addr the shell also serves live observability endpoints
// while it runs: Prometheus /metrics (including the exact token-based
// per-operation families and the pdm_alert_* watchdog state), /healthz
// (503 once the store is degraded), /debug/events (recent I/O events as
// trace JSONL), /debug/ops (the accountant's in-flight and recently
// completed operations), /debug/alerts (the watchdog's alert state as
// JSON), and the standard /debug/pprof profiles. With -trace file every
// machine event — alert annotations included — is additionally appended
// to the file as trace JSONL (the pdmtrace format), so a session can be
// replayed, folded, or re-alerted offline (pdmtrace -alerts).
//
// With -sched the dynamic store is served through the group-commit
// request scheduler (pdmdict.Scheduled) in serving mode: lookups that
// arrive within a bounded wall-time window are coalesced into one
// deduplicated shared I/O round, and writes are group-committed through
// a replayable checksummed intent log (-schedlog file) before they are
// applied. The wall clock only decides when a window closes — it is
// injected from outside the scheduler and never reaches the modeled
// machine, so traces stay deterministic by construction. -sched is for
// the dynamic store only: the replicated store's degraded-read path
// (LookupTry) bypasses the scheduler, so combining them is refused
// rather than silently serving two different read paths.
//
// fskv shuts down gracefully on SIGINT/SIGTERM as well as on EOF or
// quit: the operation in flight (commands run synchronously) completes
// and is fully accounted, the scheduler (with -sched) is drained —
// queued writes flush through the intent log to the store — the trace
// sink is flushed and closed, and the metrics server stops. A second
// signal kills the process the usual way (the signal context is
// restored once shutdown begins).
//
// stats reports, beyond the block count and total parallel I/Os, the
// fault state (degraded flag, failed disks, fault event count) and the
// hook-based observability view of the store: a per-tag breakdown
// (lookup / insert / fault.* / …) and the per-disk transfer tallies
// with a skew figure (max/mean; 1.00 is perfectly balanced — the
// quantity the paper's deterministic load balancing bounds).
//
// Names are handled by the NamedDict adapter: hashed to word keys, as
// the paper suggests ("the name can be easily hashed as well"), with
// the stored name verified on every access so collisions are impossible
// to observe.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pdmdict"
	"pdmdict/internal/fault"
	"pdmdict/internal/obs"
)

// blockWords is the satellite budget per stored block.
const blockWords = 32

func blockName(file string, blk uint64) string {
	return fmt.Sprintf("%s#%d", file, blk)
}

func encode(text string) []pdmdict.Word {
	sat := make([]pdmdict.Word, blockWords)
	b := []byte(text)
	if len(b) > (blockWords-1)*8 {
		b = b[:(blockWords-1)*8]
	}
	sat[0] = pdmdict.Word(len(b))
	for i, c := range b {
		sat[1+i/8] |= pdmdict.Word(c) << (8 * (i % 8))
	}
	return sat
}

func decode(sat []pdmdict.Word) string {
	n := int(sat[0])
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(sat[1+i/8] >> (8 * (i % 8)))
	}
	return string(b)
}

// store is what the shell needs from either backing dictionary.
type store interface {
	Insert(name string, sat []pdmdict.Word) error
	LookupTry(name string) ([]pdmdict.Word, bool, error)
	Delete(name string) bool
	Len() int
	IOStats() pdmdict.IOStats
}

// config carries the parsed flags into run, so tests can drive the
// shell without a process.
type config struct {
	replicas int
	serve    string
	trace    string
	selfheal bool
	sched    bool
	schedlog string
}

func main() {
	replicas := flag.Int("replicas", 0,
		"replicate each record onto this many distinct disks (≥2 enables degraded reads, repair, scrub)")
	serve := flag.String("serve", "",
		"serve live /metrics, /healthz, /debug/events, and /debug/pprof on this address (e.g. :8080 or 127.0.0.1:0)")
	trace := flag.String("trace", "",
		"append every machine event to this file as trace JSONL (flushed on shutdown)")
	selfheal := flag.Bool("selfheal", false,
		"run the background repair supervisor (requires -replicas ≥ 2): failed disks that answer again are rebuilt and verified automatically")
	schedMode := flag.Bool("sched", false,
		"serve through the group-commit request scheduler: windowed lookup coalescing and group-committed writes (dynamic store only)")
	schedlog := flag.String("schedlog", "",
		"with -sched: append the write intent log to this file (replayable, checksummed, group-committed)")
	flag.Parse()

	// First SIGINT/SIGTERM cancels the context (graceful drain); stop()
	// restores default delivery, so a second signal kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, config{replicas: *replicas, serve: *serve, trace: *trace, selfheal: *selfheal,
		sched: *schedMode, schedlog: *schedlog}, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fskv:", err)
		os.Exit(1)
	}
}

// run is the whole shell: it builds the store, serves the observability
// endpoints, and processes commands until stdin ends, quit is typed, or
// ctx is canceled. Shutdown is graceful in every case: commands execute
// synchronously on this goroutine, so the operation in flight finishes
// (and is fully charged to its token) before the loop observes the
// cancellation; then the trace sink is flushed and the server stopped.
func run(ctx context.Context, cfg config, stdin io.Reader, stdout io.Writer) error {
	var (
		dict     store
		basic    *pdmdict.Basic     // non-nil iff -replicas ≥ 2
		sd       *pdmdict.Scheduled // non-nil iff -sched
		degraded func() bool
		faults   func() int64
		health   func() pdmdict.HealthReport // non-nil iff -replicas ≥ 2
		disks    int
	)
	collector := obs.NewCollector()
	ring := obs.NewRing(256)
	acct := obs.NewOpAccountant()
	hook := obs.Tee(collector, ring, acct)

	var traceSink *obs.JSONLWriter
	if cfg.trace != "" {
		f, err := os.Create(cfg.trace)
		if err != nil {
			return err
		}
		defer f.Close()
		traceSink = obs.NewJSONLWriter(f)
		hook = obs.Tee(collector, ring, acct, traceSink)
	}
	flush := func() error {
		if traceSink == nil {
			return nil
		}
		if err := traceSink.Flush(); err != nil {
			return fmt.Errorf("flushing trace %s: %w", cfg.trace, err)
		}
		return nil
	}
	// The watchdog wraps the whole sink chain, so the alert events it
	// synthesizes reach every sink — the trace file included (v5).
	mon := obs.NewMonitor(hook, obs.DefaultRules()...)

	if cfg.selfheal && cfg.replicas < 2 {
		return fmt.Errorf("-selfheal needs the replicated store: rerun with -replicas 2")
	}
	if cfg.sched && cfg.replicas >= 2 {
		return fmt.Errorf("-sched serves the dynamic store only: the replicated store's degraded-read path bypasses the scheduler")
	}
	if cfg.schedlog != "" && !cfg.sched {
		return fmt.Errorf("-schedlog needs -sched")
	}
	plan := fault.NewPlan(1)
	switch {
	case cfg.replicas >= 2:
		b, err := pdmdict.NewBasic(pdmdict.BasicOptions{
			Options: pdmdict.Options{
				Capacity:  1024,
				SatWords:  pdmdict.NamedSatWords(blockWords),
				BlockSize: 512,
				Seed:      1,
			},
			Replicas: cfg.replicas,
		})
		if err != nil {
			return err
		}
		b.SetHook(mon)
		b.SetFaultInjector(plan)
		basic = b
		dict = pdmdict.NewNamed(b, blockWords)
		degraded, faults = b.Degraded, b.FaultCount
		disks = b.Machine().D()
		health = b.Health
		if cfg.selfheal {
			wake, stopHeal := b.SelfHeal()
			// A firing degraded-capacity alert nudges the supervisor, so
			// healing starts at the alert edge rather than waiting for the
			// next health notification.
			mon.SetListener(func(ts []obs.AlertTransition) {
				for _, t := range ts {
					if t.Rule == "degraded_capacity" && t.To == obs.AlertFiring {
						wake()
					}
				}
			})
			defer stopHeal()
		}
	case cfg.replicas == 0 || cfg.replicas == 1:
		base, err := pdmdict.New(pdmdict.Options{
			Capacity: 1024,
			SatWords: pdmdict.NamedSatWords(blockWords),
			Seed:     1,
		})
		if err != nil {
			return err
		}
		base.SetHook(mon)
		base.SetFaultInjector(plan)
		inner := pdmdict.Dictionary(base)
		if cfg.sched {
			var logW io.Writer
			if cfg.schedlog != "" {
				f, err := os.Create(cfg.schedlog)
				if err != nil {
					return err
				}
				defer f.Close()
				logW = f
			}
			// Serving mode: a short wall-time window bounds how long a
			// lone request waits for company. The clock is injected here —
			// it decides only when windows close and never reaches the
			// modeled machine, so the event trace stays deterministic.
			sd, err = pdmdict.NewScheduled(base, pdmdict.SchedOptions{
				MaxBatch:  8,
				Window:    2 * time.Millisecond,
				IntentLog: logW,
			})
			if err != nil {
				return err
			}
			inner = sd
		}
		dict = pdmdict.NewNamed(inner, blockWords)
		degraded = base.Degraded
		faults = func() int64 { return 0 }
		disks = 2 * 20 // Dict default: membership + cascade on 2d disks
	default:
		return fmt.Errorf("-replicas must be ≥ 2 (or 0 to disable)")
	}

	// drain is the common shutdown path: close the scheduler first (its
	// queued writes group-commit through the intent log and apply to the
	// store, so nothing acknowledged is lost), then flush the trace.
	drain := func() error {
		if sd != nil {
			if err := sd.Close(); err != nil {
				return fmt.Errorf("draining scheduler: %w", err)
			}
		}
		return flush()
	}

	if cfg.serve != "" {
		srv := &obs.Server{
			Collector:   collector,
			Ring:        ring,
			Accountant:  acct,
			Healthy:     func() bool { return !degraded() },
			Health:      health,
			Monitor:     mon,
			Fingerprint: fmt.Sprintf("replicas=%d,disks=%d,blockwords=%d", cfg.replicas, disks, blockWords),
		}
		if sd != nil {
			srv.Sched = sd.Snapshot
		}
		addr, stop, err := srv.Serve(cfg.serve)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(stdout, "serving metrics on http://%s/metrics (health: /healthz, profiles: /debug/pprof/)\n", addr)
	}

	mode := "dynamic store"
	if basic != nil {
		mode = fmt.Sprintf("replicated store (%d copies, tolerates %d failed disks)", cfg.replicas, cfg.replicas-1)
	}
	if sd != nil {
		mode += " via group-commit scheduler (2ms window, batch 8)"
	}
	fmt.Fprintf(stdout, "fskv: deterministic dictionary file store, %s (put/get/del/fail/heal/repair/scrub/health/stats/quit)\n", mode)

	// Feed lines through a channel so the command loop can select on
	// cancellation; the reader goroutine parks on stdin and exits when
	// the stream ends or nobody is listening anymore.
	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stdin)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-ctx.Done():
				return
			}
		}
	}()

	parseBlock := func(s, usage string) (uint64, bool) {
		blk, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			fmt.Fprintf(stdout, "bad block number %q\nusage: %s\n", s, usage)
			return 0, false
		}
		return blk, true
	}
	parseDisk := func(s, usage string) (int, bool) {
		d, err := strconv.Atoi(s)
		if err != nil || d < 0 || d >= disks {
			fmt.Fprintf(stdout, "bad disk %q (store has disks 0..%d)\nusage: %s\n", s, disks-1, usage)
			return 0, false
		}
		return d, true
	}
	for {
		fmt.Fprint(stdout, "> ")
		var (
			line string
			ok   bool
		)
		select {
		case <-ctx.Done():
			// The previous command already completed synchronously —
			// there is nothing half-charged to wait for.
			fmt.Fprintln(stdout, "\nfskv: signal received; drained in-flight operations, draining scheduler, flushing trace")
			return drain()
		case line, ok = <-lines:
			if !ok {
				return drain()
			}
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		before := dict.IOStats().ParallelIOs
		switch fields[0] {
		case "put":
			const usage = "put <file> <block#> <text…>"
			if len(fields) < 4 {
				fmt.Fprintln(stdout, "usage:", usage)
				continue
			}
			blk, ok := parseBlock(fields[2], usage)
			if !ok {
				continue
			}
			if err := dict.Insert(blockName(fields[1], blk), encode(strings.Join(fields[3:], " "))); err != nil {
				fmt.Fprintln(stdout, "put failed:", err)
				continue
			}
			fmt.Fprintf(stdout, "stored (%d parallel I/Os)\n", dict.IOStats().ParallelIOs-before)
		case "get":
			const usage = "get <file> <block#>"
			if len(fields) != 3 {
				fmt.Fprintln(stdout, "usage:", usage)
				continue
			}
			blk, ok := parseBlock(fields[2], usage)
			if !ok {
				continue
			}
			sat, found, err := dict.LookupTry(blockName(fields[1], blk))
			cost := dict.IOStats().ParallelIOs - before
			switch {
			case err != nil:
				fmt.Fprintf(stdout, "read inconclusive (%d parallel I/Os): %v\n", cost, err)
			case !found:
				fmt.Fprintf(stdout, "not found (%d parallel I/Os)\n", cost)
			default:
				fmt.Fprintf(stdout, "%q (%d parallel I/Os)\n", decode(sat), cost)
			}
		case "del":
			const usage = "del <file> <block#>"
			if len(fields) != 3 {
				fmt.Fprintln(stdout, "usage:", usage)
				continue
			}
			blk, ok := parseBlock(fields[2], usage)
			if !ok {
				continue
			}
			deleted := dict.Delete(blockName(fields[1], blk))
			fmt.Fprintf(stdout, "deleted=%v (%d parallel I/Os)\n", deleted, dict.IOStats().ParallelIOs-before)
		case "fail":
			const usage = "fail <disk>"
			if len(fields) != 2 {
				fmt.Fprintln(stdout, "usage:", usage)
				continue
			}
			d, ok := parseDisk(fields[1], usage)
			if !ok {
				continue
			}
			plan.FailDisk(d)
			fmt.Fprintf(stdout, "disk %d failed (fail-stop); failed disks: %v\n", d, plan.FailedDisks())
		case "heal":
			const usage = "heal <disk>"
			if len(fields) != 2 {
				fmt.Fprintln(stdout, "usage:", usage)
				continue
			}
			d, ok := parseDisk(fields[1], usage)
			if !ok {
				continue
			}
			plan.HealDisk(d)
			fmt.Fprintf(stdout, "disk %d healed (contents unchanged — run: repair %d)\n", d, d)
		case "repair":
			const usage = "repair <disk>"
			if len(fields) != 2 {
				fmt.Fprintln(stdout, "usage:", usage)
				continue
			}
			d, ok := parseDisk(fields[1], usage)
			if !ok {
				continue
			}
			if basic == nil {
				fmt.Fprintln(stdout, "repair needs the replicated store: rerun with -replicas 2")
				continue
			}
			if plan.Failed(d) {
				fmt.Fprintf(stdout, "disk %d is still failed — heal %d first\n", d, d)
				continue
			}
			if err := basic.Repair(d); err != nil {
				fmt.Fprintln(stdout, "repair failed:", err)
				continue
			}
			// Verify just the repaired disk: a clean per-disk scrub returns
			// ONLY this disk to Healthy, so what is known about any other
			// failed disk is preserved.
			if bad := basic.ScrubDisk(d); len(bad) != 0 {
				fmt.Fprintf(stdout, "disk %d rebuilt but verification found %d bad blocks: %v\n", d, len(bad), bad)
				continue
			}
			fmt.Fprintf(stdout, "disk %d rebuilt from replicas and verified healthy (%d parallel I/Os)\n", d, dict.IOStats().ParallelIOs-before)
			if unhealthy := health().Unhealthy(); len(unhealthy) > 0 {
				for _, dh := range unhealthy {
					fmt.Fprintf(stdout, "disk %d still %s\n", dh.Disk, dh.State)
				}
			}
		case "scrub":
			if basic == nil {
				fmt.Fprintln(stdout, "scrub needs the replicated store: rerun with -replicas 2")
				continue
			}
			bad := basic.Scrub()
			cost := dict.IOStats().ParallelIOs - before
			if len(bad) == 0 {
				fmt.Fprintf(stdout, "scrub clean: all blocks verified (%d parallel I/Os)\n", cost)
			} else {
				fmt.Fprintf(stdout, "scrub found %d bad blocks (%d parallel I/Os): %v\n", len(bad), cost, bad)
			}
		case "health":
			if health == nil {
				fmt.Fprintln(stdout, "health needs the replicated store: rerun with -replicas 2")
				continue
			}
			rep := health()
			for _, dh := range rep.Disks {
				extra := ""
				if dh.State == pdmdict.DiskFailed && dh.Reachable {
					extra = ", reachable"
				}
				fmt.Fprintf(stdout, "disk %d: %s (faults %d, transients %d, transitions %d%s)\n",
					dh.Disk, dh.State, dh.Faults, dh.Transients, dh.Transitions, extra)
			}
			fmt.Fprintf(stdout, "retries %d, hedged reads %d, backoff steps %d, repair chunks %d (%d rows)\n",
				rep.Retries, rep.Hedges, rep.BackoffSteps, rep.RepairChunks, rep.RepairRows)
			for _, r := range mon.Snapshot().Rules {
				fmt.Fprintf(stdout, "alert %s: firing=%d pending=%d transitions=%d cycles=%d\n",
					r.Rule, r.Firing, r.Pending, r.Transitions, r.Cycles)
			}
		case "stats":
			fmt.Fprintf(stdout, "blocks stored: %d, total parallel I/Os: %d\n",
				dict.Len(), dict.IOStats().ParallelIOs)
			fmt.Fprintf(stdout, "degraded: %v, failed disks: %v, fault events: %d\n",
				degraded(), plan.FailedDisks(), faults())
			var sb strings.Builder
			sb.WriteString("per-tag I/O breakdown:\n")
			collector.RenderTags(&sb)
			sb.WriteString("per-operation cost (modeled latency):\n")
			collector.RenderOps(&sb)
			sb.WriteString("per-disk transfers:\n")
			collector.RenderPerDisk(&sb)
			fmt.Fprint(stdout, sb.String())
		case "quit", "exit":
			return drain()
		default:
			fmt.Fprintf(stdout, "unknown command %q — commands: put get del fail heal repair scrub health stats quit\n", fields[0])
		}
	}
}

// Command fskv is a small interactive key-value shell over the fully
// dynamic dictionary — the paper's Section 1.2 file-system use case
// ("let keys consist of a file name and a block number"). It reads
// commands from stdin and reports the parallel-I/O cost of each.
//
// Commands:
//
//	put <file> <block#> <text…>   store a block
//	get <file> <block#>           fetch a block
//	del <file> <block#>           delete a block
//	stats                         I/O counters so far
//	quit
//
// Unknown commands print a usage error.
//
// stats reports, beyond the block count and total parallel I/Os, the
// hook-based observability view of the store: a per-tag breakdown
// (lookup / insert / insert.probe / delete / rebuild, with batch
// counts, parallel I/Os, block transfers, and each tag's share) and
// the per-disk transfer tallies with a skew figure (max/mean; 1.00 is
// perfectly balanced — the quantity the paper's deterministic load
// balancing bounds).
//
// Names are handled by the NamedDict adapter: hashed to word keys, as
// the paper suggests ("the name can be easily hashed as well"), with
// the stored name verified on every access so collisions are impossible
// to observe.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pdmdict"
	"pdmdict/internal/obs"
)

// blockWords is the satellite budget per stored block.
const blockWords = 32

func blockName(file string, blk uint64) string {
	return fmt.Sprintf("%s#%d", file, blk)
}

func encode(text string) []pdmdict.Word {
	sat := make([]pdmdict.Word, blockWords)
	b := []byte(text)
	if len(b) > (blockWords-1)*8 {
		b = b[:(blockWords-1)*8]
	}
	sat[0] = pdmdict.Word(len(b))
	for i, c := range b {
		sat[1+i/8] |= pdmdict.Word(c) << (8 * (i % 8))
	}
	return sat
}

func decode(sat []pdmdict.Word) string {
	n := int(sat[0])
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(sat[1+i/8] >> (8 * (i % 8)))
	}
	return string(b)
}

func main() {
	base, err := pdmdict.New(pdmdict.Options{
		Capacity: 1024,
		SatWords: pdmdict.NamedSatWords(blockWords),
		Seed:     1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fskv:", err)
		os.Exit(1)
	}
	collector := obs.NewCollector()
	base.SetHook(collector)
	dict := pdmdict.NewNamed(base, blockWords)

	fmt.Println("fskv: deterministic dictionary file store (put/get/del/stats/quit)")
	sc := bufio.NewScanner(os.Stdin)
	parseBlock := func(s string) (uint64, bool) {
		blk, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			fmt.Println("bad block number:", err)
			return 0, false
		}
		return blk, true
	}
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		before := dict.IOStats().ParallelIOs
		switch fields[0] {
		case "put":
			if len(fields) < 4 {
				fmt.Println("usage: put <file> <block#> <text…>")
				continue
			}
			blk, ok := parseBlock(fields[2])
			if !ok {
				continue
			}
			if err := dict.Insert(blockName(fields[1], blk), encode(strings.Join(fields[3:], " "))); err != nil {
				fmt.Println("put failed:", err)
				continue
			}
			fmt.Printf("stored (%d parallel I/Os)\n", dict.IOStats().ParallelIOs-before)
		case "get":
			if len(fields) != 3 {
				fmt.Println("usage: get <file> <block#>")
				continue
			}
			blk, ok := parseBlock(fields[2])
			if !ok {
				continue
			}
			sat, found := dict.Lookup(blockName(fields[1], blk))
			cost := dict.IOStats().ParallelIOs - before
			if !found {
				fmt.Printf("not found (%d parallel I/Os)\n", cost)
				continue
			}
			fmt.Printf("%q (%d parallel I/Os)\n", decode(sat), cost)
		case "del":
			if len(fields) != 3 {
				fmt.Println("usage: del <file> <block#>")
				continue
			}
			blk, ok := parseBlock(fields[2])
			if !ok {
				continue
			}
			deleted := dict.Delete(blockName(fields[1], blk))
			fmt.Printf("deleted=%v (%d parallel I/Os)\n", deleted, dict.IOStats().ParallelIOs-before)
		case "stats":
			fmt.Printf("blocks stored: %d, total parallel I/Os: %d\n",
				dict.Len(), dict.IOStats().ParallelIOs)
			var sb strings.Builder
			sb.WriteString("per-tag I/O breakdown:\n")
			collector.RenderTags(&sb)
			sb.WriteString("per-disk transfers:\n")
			collector.RenderPerDisk(&sb)
			fmt.Print(sb.String())
		case "quit", "exit":
			return
		default:
			fmt.Printf("unknown command %q — commands: put get del stats quit\n", fields[0])
		}
	}
}

package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pdmdict/internal/obs"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the shell's
// output while run executes on another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunCanceledContext is the graceful-shutdown contract: canceling
// the context (what SIGINT/SIGTERM do via signal.NotifyContext) makes
// run finish the command in flight, flush the JSONL trace sink, and
// return nil — with the trace readable and non-empty afterwards.
func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")

	inR, inW := io.Pipe()
	defer inW.Close()
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, config{trace: tracePath}, inR, &out) }()

	if _, err := io.WriteString(inW, "put a 1 hello\nget a 1\n"); err != nil {
		t.Fatal(err)
	}
	// Both commands have completed once the get's answer is printed —
	// the shell is synchronous — so the cancel below arrives while the
	// loop is parked between commands, like a real signal would.
	waitFor(t, "get to answer", func() bool { return strings.Contains(out.String(), `"hello"`) })
	cancel()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancellation, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
	if got := out.String(); !strings.Contains(got, "drained in-flight operations") {
		t.Errorf("shutdown message missing from output:\n%s", got)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatalf("trace did not flush cleanly: %v", err)
	}
	if len(events) == 0 {
		t.Error("trace is empty; put/get events were not flushed")
	}
}

// TestRepairKeepsOtherDiskHealthState is the regression test for the
// old machine-wide degraded bit: with TWO disks known failed, repairing
// and verifying one of them must return only that disk to Healthy —
// the health report still shows the other disk Failed, and the store
// stays degraded. Under the single-bit scheme the post-repair cleanup
// erased everything known about the second disk.
func TestRepairKeepsOtherDiskHealthState(t *testing.T) {
	var in strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&in, "put f %d block-%d\n", i, i)
	}
	in.WriteString("fail 0\nfail 1\n")
	// Reads observe the fail-stops: both disks become Failed.
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&in, "get f %d\n", i)
	}
	// Both drives answer again (contents intact — fail-stop only denies
	// access), but only disk 0 is repaired and verified.
	in.WriteString("heal 0\nheal 1\nrepair 0\nhealth\nquit\n")

	var out syncBuffer
	if err := run(context.Background(), config{replicas: 2}, strings.NewReader(in.String()), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "disk 0 rebuilt from replicas and verified healthy") {
		t.Fatalf("repair did not verify disk 0:\n%s", got)
	}
	if !strings.Contains(got, "disk 1 still failed") {
		t.Errorf("repair output lost disk 1's state:\n%s", got)
	}
	if !strings.Contains(got, "disk 0: healthy") {
		t.Errorf("health does not show disk 0 healthy:\n%s", got)
	}
	if !strings.Contains(got, "disk 1: failed") {
		t.Errorf("health lost disk 1's failed state:\n%s", got)
	}
}

// TestRunQuitFlushesTrace checks the ordinary exit paths share the same
// flush: quit (and EOF) must leave a parseable trace behind.
func TestRunQuitFlushesTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	var out syncBuffer
	err := run(context.Background(), config{trace: tracePath},
		strings.NewReader("put a 1 x\nquit\n"), &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatalf("trace did not flush cleanly: %v", err)
	}
	if len(events) == 0 {
		t.Error("trace is empty")
	}
}

// Benchmarks: one per table/figure of the reproduction (DESIGN.md's
// per-experiment index). Two kinds live here:
//
//   - Benchmark<Experiment> runs the corresponding harness experiment
//     end to end (the same code `pdmbench -run <id>` executes); use
//     these to regenerate the EXPERIMENTS.md tables under the Go
//     benchmark driver.
//   - BenchmarkOp* measure single dictionary operations and report
//     parallel I/Os per operation (ios/op), the paper's cost measure,
//     alongside wall-clock ns/op.
package pdmdict_test

import (
	"io"
	"testing"

	"pdmdict"
	"pdmdict/internal/bench"
)

// runExperiment drives one harness experiment under the benchmark loop.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run("^"+id+"$", io.Discard, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1(b *testing.B)             { runExperiment(b, "E1-fig1") }
func BenchmarkLemma3(b *testing.B)           { runExperiment(b, "E2-lemma3") }
func BenchmarkUniqueNeighbors(b *testing.B)  { runExperiment(b, "E3-unique") }
func BenchmarkThm6Static(b *testing.B)       { runExperiment(b, "E4-thm6") }
func BenchmarkThm7Dynamic(b *testing.B)      { runExperiment(b, "E5-thm7") }
func BenchmarkExplicitExpander(b *testing.B) { runExperiment(b, "E6-explicit") }
func BenchmarkTails(b *testing.B)            { runExperiment(b, "E7-tails") }
func BenchmarkBTreeBaseline(b *testing.B)    { runExperiment(b, "E8-btree") }
func BenchmarkBandwidth(b *testing.B)        { runExperiment(b, "E9-bandwidth") }
func BenchmarkRebuild(b *testing.B)          { runExperiment(b, "E10-rebuild") }
func BenchmarkSeqCache(b *testing.B)         { runExperiment(b, "E11-seqcache") }
func BenchmarkScaling(b *testing.B)          { runExperiment(b, "E12-scaling") }
func BenchmarkSpace(b *testing.B)            { runExperiment(b, "E13-space") }
func BenchmarkAblateStriping(b *testing.B)   { runExperiment(b, "A1-ablate-striping") }
func BenchmarkAblateCascade(b *testing.B)    { runExperiment(b, "A2-ablate-cascade") }
func BenchmarkAblateK(b *testing.B)          { runExperiment(b, "A3-ablate-k") }
func BenchmarkOneProbe(b *testing.B)         { runExperiment(b, "A4-oneprobe") }

// ---------------------------------------------------------------------
// Per-operation micro-benchmarks with ios/op reporting.

type ioDict interface {
	pdmdict.Dictionary
}

func fillKeys(n int) []pdmdict.Word {
	keys := make([]pdmdict.Word, n)
	for i := range keys {
		keys[i] = pdmdict.Word(i)*2654435761 + 1
	}
	return keys
}

func benchLookup(b *testing.B, d ioDict, satWords int) {
	b.Helper()
	keys := fillKeys(4096)
	sat := make([]pdmdict.Word, satWords)
	for _, k := range keys {
		if err := d.Insert(k, sat); err != nil {
			b.Fatal(err)
		}
	}
	startIOs := d.IOStats().ParallelIOs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Lookup(keys[i%len(keys)]); !ok {
			b.Fatal("key lost")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(d.IOStats().ParallelIOs-startIOs)/float64(b.N), "ios/op")
}

func benchInsert(b *testing.B, mk func(capacity int) ioDict, satWords int) {
	b.Helper()
	sat := make([]pdmdict.Word, satWords)
	d := mk(b.N + 1)
	keys := fillKeys(b.N + 1)
	startIOs := d.IOStats().ParallelIOs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Insert(keys[i], sat); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(d.IOStats().ParallelIOs-startIOs)/float64(b.N), "ios/op")
}

func BenchmarkOpBasicLookup(b *testing.B) {
	d, err := pdmdict.NewBasic(pdmdict.BasicOptions{Options: pdmdict.Options{Capacity: 4096, SatWords: 2, Seed: 1}})
	if err != nil {
		b.Fatal(err)
	}
	benchLookup(b, d, 2)
}

func BenchmarkOpBasicInsert(b *testing.B) {
	benchInsert(b, func(c int) ioDict {
		d, err := pdmdict.NewBasic(pdmdict.BasicOptions{Options: pdmdict.Options{Capacity: c, SatWords: 2, Seed: 2}})
		if err != nil {
			b.Fatal(err)
		}
		return d
	}, 2)
}

func BenchmarkOpDynamicLookup(b *testing.B) {
	d, err := pdmdict.NewDynamic(pdmdict.Options{Capacity: 4096, SatWords: 2, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	benchLookup(b, d, 2)
}

func BenchmarkOpDynamicInsert(b *testing.B) {
	benchInsert(b, func(c int) ioDict {
		d, err := pdmdict.NewDynamic(pdmdict.Options{Capacity: c, SatWords: 2, Seed: 4})
		if err != nil {
			b.Fatal(err)
		}
		return d
	}, 2)
}

func BenchmarkOpDictLookup(b *testing.B) {
	d, err := pdmdict.New(pdmdict.Options{Capacity: 4096, SatWords: 2, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	benchLookup(b, d, 2)
}

func BenchmarkOpDictInsert(b *testing.B) {
	benchInsert(b, func(c int) ioDict {
		d, err := pdmdict.New(pdmdict.Options{Capacity: c, SatWords: 2, Seed: 6})
		if err != nil {
			b.Fatal(err)
		}
		return d
	}, 2)
}

func BenchmarkOpStaticLookup(b *testing.B) {
	keys := fillKeys(4096)
	recs := make([]pdmdict.Record, len(keys))
	for i, k := range keys {
		recs[i] = pdmdict.Record{Key: k, Sat: []pdmdict.Word{1, 2}}
	}
	d, err := pdmdict.BuildStatic(pdmdict.StaticOptions{
		Options: pdmdict.Options{Capacity: len(keys), SatWords: 2, Degree: 12, Seed: 7},
	}, recs)
	if err != nil {
		b.Fatal(err)
	}
	startIOs := d.IOStats().ParallelIOs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Lookup(keys[i%len(keys)]); !ok {
			b.Fatal("key lost")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(d.IOStats().ParallelIOs-startIOs)/float64(b.N), "ios/op")
}

func BenchmarkOpHashTableLookup(b *testing.B) {
	d, err := pdmdict.NewHashTable(pdmdict.Options{Capacity: 4096, SatWords: 2, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	benchLookup(b, d, 2)
}

func BenchmarkOpCuckooLookup(b *testing.B) {
	d, err := pdmdict.NewCuckoo(pdmdict.Options{Capacity: 4096, SatWords: 2, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	benchLookup(b, d, 2)
}

func BenchmarkOpBTreeLookup(b *testing.B) {
	d, err := pdmdict.NewBTree(pdmdict.BTreeOptions{Options: pdmdict.Options{Capacity: 4096, SatWords: 2, Seed: 10}})
	if err != nil {
		b.Fatal(err)
	}
	benchLookup(b, d, 2)
}

func BenchmarkOpOneProbeLookup(b *testing.B) {
	d, err := pdmdict.NewOneProbe(pdmdict.OneProbeOptions{Options: pdmdict.Options{Capacity: 4096, SatWords: 2, Seed: 11}})
	if err != nil {
		b.Fatal(err)
	}
	benchLookup(b, d, 2)
}

func BenchmarkOpOneProbeInsert(b *testing.B) {
	benchInsert(b, func(c int) ioDict {
		d, err := pdmdict.NewOneProbe(pdmdict.OneProbeOptions{Options: pdmdict.Options{Capacity: c, SatWords: 2, Seed: 12}})
		if err != nil {
			b.Fatal(err)
		}
		return d
	}, 2)
}

func BenchmarkOpDirectLookup(b *testing.B) {
	d, err := pdmdict.NewDirect(pdmdict.Options{Universe: 1 << 16, SatWords: 2, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	keys := fillKeys(4096)
	for i := range keys {
		keys[i] %= 1 << 16
	}
	sat := []pdmdict.Word{1, 2}
	for _, k := range keys {
		if err := d.Insert(k, sat); err != nil {
			b.Fatal(err)
		}
	}
	startIOs := d.IOStats().ParallelIOs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Lookup(keys[i%len(keys)])
	}
	b.StopTimer()
	b.ReportMetric(float64(d.IOStats().ParallelIOs-startIOs)/float64(b.N), "ios/op")
}

func BenchmarkOpBasicLookupBatch64(b *testing.B) {
	d, err := pdmdict.NewBasic(pdmdict.BasicOptions{Options: pdmdict.Options{Capacity: 4096, SatWords: 2, Seed: 14}})
	if err != nil {
		b.Fatal(err)
	}
	keys := fillKeys(4096)
	sat := []pdmdict.Word{1, 2}
	for _, k := range keys {
		if err := d.Insert(k, sat); err != nil {
			b.Fatal(err)
		}
	}
	batch := make([]pdmdict.Word, 64)
	for i := range batch {
		batch[i] = keys[i%16] // hot working set: dedup pays
	}
	startIOs := d.IOStats().ParallelIOs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.LookupBatch(batch)
	}
	b.StopTimer()
	b.ReportMetric(float64(d.IOStats().ParallelIOs-startIOs)/float64(b.N*len(batch)), "ios/lookup")
}

func BenchmarkOpNamedLookup(b *testing.B) {
	base, err := pdmdict.New(pdmdict.Options{Capacity: 2048, SatWords: pdmdict.NamedSatWords(2), Seed: 15})
	if err != nil {
		b.Fatal(err)
	}
	d := pdmdict.NewNamed(base, 2)
	names := make([]string, 2048)
	for i := range names {
		names[i] = "/var/mail/user/" + string(rune('a'+i%26)) + "/msg" + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10)) + string(rune('0'+(i/100)%10)) + string(rune('0'+(i/1000)%10))
		if err := d.Insert(names[i], []pdmdict.Word{1, 2}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Lookup(names[i%len(names)])
	}
}
